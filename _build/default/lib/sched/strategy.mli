(** Determination of the per-application resource constraint β
    (Section 6).

    - [Selfish] (S): every PTG may use the whole platform, β = 1.
    - [Equal_share] (ES): β = 1/|A|.
    - [Proportional m] (PS-m): β_i = γ_i / Σ_j γ_j (Eq. 1), with γ the
      chosen PTG characteristic.
    - [Weighted (m, µ)] (WPS-m): β_i = µ/|A| + (1−µ)·γ_i/Σγ_j (Eq. 2);
      µ = 0 gives PS, µ = 1 gives ES. *)

type metric =
  | Cp     (** critical path length (1-processor reference times) *)
  | Width  (** maximal precedence-level population *)
  | Work   (** total flops *)

type t =
  | Selfish
  | Equal_share
  | Proportional of metric
  | Weighted of metric * float

val name : t -> string
(** Paper spelling: "S", "ES", "PS-cp", "WPS-work(0.7)", … *)

val short_name : t -> string
(** Without the µ value: "WPS-work". *)

val paper_mu : metric -> float
(** The µ values retained in Section 7: work → 0.7, cp → 0.5,
    width → 0.5 (0.3 was preferred for FFT graphs; 0.5 is the random-PTG
    value and the default here). *)

val paper_eight : t list
(** The eight strategies compared in Figures 3–4, in the paper's order:
    S, ES, PS-cp, PS-width, PS-work, WPS-cp, WPS-width, WPS-work (with
    {!paper_mu} weights). *)

val paper_six : t list
(** The six strategies of Figure 5 (width-based ones excluded, as all
    Strassen PTGs share one width). *)

val gamma : metric -> ref_speed:float -> Mcs_ptg.Ptg.t -> float
(** The characteristic γ of one PTG. *)

val betas :
  t -> ref_speed:float -> Mcs_ptg.Ptg.t list -> float array
(** Resource constraints for a set of concurrent applications, in list
    order. All values lie in (0, 1]; a zero Σγ (degenerate) falls back
    to equal share.
    @raise Invalid_argument on an empty list or µ outside [0, 1]. *)
