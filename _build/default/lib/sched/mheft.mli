(** M-HEFT: Heterogeneous Earliest Finish Time for moldable data-parallel
    tasks (Casanova, Desprez & Suter [1]; improvements from N'Takpé,
    Suter & Casanova [11]). The one-step comparator to the paper's
    two-step approach: allocation and placement are decided together,
    task by task.

    Tasks are considered by decreasing upward rank (bottom level under
    single-processor reference execution times). For each task, every
    cluster and every feasible processor count is examined and the
    combination with the earliest finish time wins. The improvements of
    [11] are exposed as options bounding the allocation search:

    - [max_fraction] caps the share of one cluster a single task may
      grab (pure M-HEFT lets a task monopolise the largest cluster,
      which is disastrous in the presence of competitors);
    - [min_efficiency] requires the Amdahl parallel efficiency
      [speedup(p)/p] of the candidate allocation to stay above a
      threshold, the cost-effectiveness fix;
    - [max_procs] truncates the search absolutely — 1 recovers the
      classical HEFT of Topcuoglu et al. [14] for sequential tasks. *)

type options = {
  max_fraction : float;    (** in (0, 1]; cap = ⌈fraction × cluster size⌉ *)
  min_efficiency : float;  (** in [0, 1]; 0 disables the filter *)
  max_procs : int option;  (** absolute cap; [Some 1] = HEFT *)
}

val default_options : options
(** Pure M-HEFT: [max_fraction = 1.], [min_efficiency = 0.],
    [max_procs = None]. *)

val schedule :
  ?options:options ->
  Mcs_platform.Platform.t ->
  Mcs_ptg.Ptg.t ->
  Schedule.t
(** Schedule a single PTG on a dedicated platform.
    @raise Invalid_argument on out-of-range options. *)

val schedule_heft : Mcs_platform.Platform.t -> Mcs_ptg.Ptg.t -> Schedule.t
(** Classical HEFT: every task on exactly one processor. *)
