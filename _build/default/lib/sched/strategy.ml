module Ptg = Mcs_ptg.Ptg

type metric = Cp | Width | Work

type t =
  | Selfish
  | Equal_share
  | Proportional of metric
  | Weighted of metric * float

let metric_name = function Cp -> "cp" | Width -> "width" | Work -> "work"

let short_name = function
  | Selfish -> "S"
  | Equal_share -> "ES"
  | Proportional m -> "PS-" ^ metric_name m
  | Weighted (m, _) -> "WPS-" ^ metric_name m

let name = function
  | Weighted (m, mu) -> Printf.sprintf "WPS-%s(%.1f)" (metric_name m) mu
  | s -> short_name s

let paper_mu = function Work -> 0.7 | Cp -> 0.5 | Width -> 0.5

let paper_eight =
  [
    Selfish;
    Equal_share;
    Proportional Cp;
    Proportional Width;
    Proportional Work;
    Weighted (Cp, paper_mu Cp);
    Weighted (Width, paper_mu Width);
    Weighted (Work, paper_mu Work);
  ]

let paper_six =
  [
    Selfish;
    Equal_share;
    Proportional Cp;
    Proportional Work;
    Weighted (Cp, paper_mu Cp);
    Weighted (Work, paper_mu Work);
  ]

let gamma metric ~ref_speed ptg =
  match metric with
  | Cp -> Ptg.critical_path_seq ptg ~gflops:ref_speed
  | Width -> float_of_int (Ptg.max_width ptg)
  | Work -> Ptg.work ptg

let betas strategy ~ref_speed ptgs =
  if ptgs = [] then invalid_arg "Strategy.betas: no applications";
  let n = List.length ptgs in
  let nf = float_of_int n in
  let equal = Array.make n (1. /. nf) in
  let proportional metric =
    let gammas =
      Array.of_list (List.map (gamma metric ~ref_speed) ptgs)
    in
    let total = Mcs_util.Floatx.sum gammas in
    if total <= 0. then equal
    else Array.map (fun g -> g /. total) gammas
  in
  let clamp b = Mcs_util.Floatx.clamp ~lo:Float.min_float ~hi:1. b in
  let raw =
    match strategy with
    | Selfish -> Array.make n 1.
    | Equal_share -> equal
    | Proportional m -> proportional m
    | Weighted (m, mu) ->
      if mu < 0. || mu > 1. then invalid_arg "Strategy.betas: mu outside [0, 1]";
      let ps = proportional m in
      Array.map2 (fun e p -> (mu *. e) +. ((1. -. mu) *. p)) equal ps
  in
  Array.map clamp raw
