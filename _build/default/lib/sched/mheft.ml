module Dag = Mcs_dag.Dag
module Ptg = Mcs_ptg.Ptg
module P = Mcs_platform.Platform
module Task = Mcs_taskmodel.Task
module Redistribution = Mcs_taskmodel.Redistribution

type options = {
  max_fraction : float;
  min_efficiency : float;
  max_procs : int option;
}

let default_options =
  { max_fraction = 1.; min_efficiency = 0.; max_procs = None }

let validate_options o =
  if o.max_fraction <= 0. || o.max_fraction > 1. then
    invalid_arg "Mheft: max_fraction outside (0, 1]";
  if o.min_efficiency < 0. || o.min_efficiency > 1. then
    invalid_arg "Mheft: min_efficiency outside [0, 1]";
  match o.max_procs with
  | Some p when p < 1 -> invalid_arg "Mheft: max_procs < 1"
  | Some _ | None -> ()

(* Upward ranks on the mean processor speed, one processor per task —
   the standard HEFT prioritisation adapted to moldable tasks. *)
let ranks platform ptg =
  let mean_speed =
    P.total_power platform /. float_of_int (P.total_procs platform)
  in
  Dag.bottom_levels ptg.Ptg.dag
    ~node_weight:(fun v ->
      let task = ptg.Ptg.tasks.(v) in
      if Task.is_zero task then 0. else Task.seq_time task ~gflops:mean_speed)
    ~edge_weight:(fun e ->
      let bytes = ptg.Ptg.edge_bytes.(e) in
      if bytes <= 0. then 0.
      else P.latency platform +. (bytes /. P.nic_bandwidth platform))

let schedule ?(options = default_options) platform ptg =
  validate_options options;
  let dag = ptg.Ptg.dag in
  let n = Dag.node_count dag in
  let rank = ranks platform ptg in
  let topo_rank =
    let r = Array.make n 0 in
    Array.iteri (fun i v -> r.(v) <- i) (Dag.topological_order dag);
    r
  in
  let order = Array.init n (fun v -> v) in
  Array.sort
    (fun a b ->
      if rank.(a) > rank.(b) then -1
      else if rank.(a) < rank.(b) then 1
      else compare topo_rank.(a) topo_rank.(b))
    order;
  let proc_avail = Array.make (P.total_procs platform) 0. in
  let placements =
    Array.init n (fun v ->
        { Schedule.node = v; cluster = 0; procs = [||]; start = 0.; finish = 0. })
  in
  let place v =
    let task = ptg.Ptg.tasks.(v) in
    let preds =
      Array.map
        (fun (u, e) -> (placements.(u), ptg.Ptg.edge_bytes.(e)))
        (Dag.preds dag v)
    in
    if Task.is_zero task then begin
      let start =
        Array.fold_left
          (fun acc (pu, _) -> Float.max acc pu.Schedule.finish)
          0. preds
      in
      placements.(v) <-
        { Schedule.node = v; cluster = 0; procs = [||]; start; finish = start }
    end
    else begin
      let best = ref None in
      for k = 0 to P.cluster_count platform - 1 do
        let c = P.cluster platform k in
        let base = P.first_proc platform k in
        let procs_sorted = Array.init c.P.procs (fun i -> base + i) in
        Array.sort
          (fun p q ->
            let cmp = Float.compare proc_avail.(p) proc_avail.(q) in
            if cmp <> 0 then cmp else compare p q)
          procs_sorted;
        let cap =
          let by_fraction =
            max 1
              (int_of_float
                 (Float.ceil (options.max_fraction *. float_of_int c.P.procs)))
          in
          let by_abs =
            match options.max_procs with
            | Some m -> min m c.P.procs
            | None -> c.P.procs
          in
          min by_fraction by_abs
        in
        for p = 1 to cap do
          let efficient =
            options.min_efficiency <= 0.
            || Task.speedup task ~procs:p /. float_of_int p
               >= options.min_efficiency
          in
          if efficient then begin
            let start0 =
              Array.fold_left
                (fun acc (pu, bytes) ->
                  let cost =
                    Redistribution.transfer_time platform
                      ~src_cluster:pu.Schedule.cluster ~dst_cluster:k
                      ~src_procs:(max 1 (Array.length pu.Schedule.procs))
                      ~dst_procs:p ~bytes
                  in
                  Float.max acc (pu.Schedule.finish +. cost))
                proc_avail.(procs_sorted.(p - 1))
                preds
            in
            (* Best fit among processors available by start0. *)
            let fits = ref p in
            while
              !fits < Array.length procs_sorted
              && proc_avail.(procs_sorted.(!fits))
                 <= start0 +. Mcs_util.Floatx.eps
            do
              incr fits
            done;
            let chosen = Array.sub procs_sorted (!fits - p) p in
            let data_ready =
              Array.fold_left
                (fun acc (pu, bytes) ->
                  let cost =
                    if
                      bytes > 0. && pu.Schedule.cluster = k
                      && Redistribution.same_procs pu.Schedule.procs chosen
                    then 0.
                    else
                      Redistribution.transfer_time platform
                        ~src_cluster:pu.Schedule.cluster ~dst_cluster:k
                        ~src_procs:(max 1 (Array.length pu.Schedule.procs))
                        ~dst_procs:p ~bytes
                  in
                  Float.max acc (pu.Schedule.finish +. cost))
                0. preds
            in
            let avail =
              Array.fold_left
                (fun acc q -> Float.max acc proc_avail.(q))
                0. chosen
            in
            let start = Float.max data_ready avail in
            let finish = start +. Task.time task ~gflops:c.P.gflops ~procs:p in
            let better =
              match !best with
              | None -> true
              | Some (_, _, bf, bs) ->
                finish < bf -. Mcs_util.Floatx.eps
                || (Float.abs (finish -. bf) <= Mcs_util.Floatx.eps
                   && start < bs -. Mcs_util.Floatx.eps)
            in
            if better then best := Some (k, chosen, finish, start)
          end
        done
      done;
      match !best with
      | None -> invalid_arg "Mheft.schedule: no feasible allocation"
      | Some (k, chosen, finish, start) ->
        Array.iter (fun q -> proc_avail.(q) <- finish) chosen;
        placements.(v) <-
          { Schedule.node = v; cluster = k; procs = chosen; start; finish }
    end
  in
  Array.iter place order;
  Schedule.make ~ptg ~placements

let schedule_heft platform ptg =
  schedule ~options:{ default_options with max_procs = Some 1 } platform ptg
