lib/prng/prng.ml: Array Hashtbl Int64 List
