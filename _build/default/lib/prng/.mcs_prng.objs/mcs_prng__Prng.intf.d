lib/prng/prng.mli:
