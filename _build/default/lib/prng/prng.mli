(** Deterministic, splittable pseudo-random number generator.

    Every stochastic component of the reproduction (DAG generation, task
    parameters, scenario sampling) draws from this generator so that a
    scenario is fully determined by a single integer seed. The stream is
    xoshiro256** seeded through splitmix64; {!split} derives an
    independent child stream, which lets the experiment harness hand each
    application / run its own generator without coupling their draw
    counts. *)

type t

val create : seed:int -> t
(** Generator deterministically initialised from [seed]. *)

val copy : t -> t
(** Independent clone with identical state (same future draws). *)

val split : t -> t
(** Child generator whose stream is independent of the parent's
    subsequent draws. Advances the parent. *)

val bits64 : t -> int64
(** Next raw 64 bits. *)

val int : t -> int -> int
(** [int t bound] draws uniformly from [0, bound).
    @raise Invalid_argument if [bound <= 0]. *)

val int_in : t -> lo:int -> hi:int -> int
(** Uniform integer in the closed interval [lo, hi].
    @raise Invalid_argument if [hi < lo]. *)

val float : t -> float -> float
(** [float t bound] draws uniformly from [0, bound). *)

val uniform : t -> lo:float -> hi:float -> float
(** Uniform float in [lo, hi). @raise Invalid_argument if [hi < lo]. *)

val bool : t -> bool
(** Fair coin. *)

val bernoulli : t -> p:float -> bool
(** [true] with probability [p] (clamped to [0, 1]). *)

val exponential : t -> mean:float -> float
(** Exponentially distributed draw with the given mean (inverse-CDF). *)

val choose : t -> 'a array -> 'a
(** Uniform element of a non-empty array.
    @raise Invalid_argument on the empty array. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val pick_distinct : t -> int -> count:int -> int list
(** [pick_distinct t n ~count] draws [count] distinct integers from
    [0, n), in increasing order. @raise Invalid_argument if
    [count > n] or [count < 0]. *)
