type t = { mutable s0 : int64; mutable s1 : int64; mutable s2 : int64; mutable s3 : int64 }

(* splitmix64: used only to expand the integer seed into the four words
   of xoshiro state, and to derive child seeds in [split]. *)
let splitmix64 state =
  let open Int64 in
  state := add !state 0x9E3779B97F4A7C15L;
  let z = !state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let of_seed64 seed64 =
  let st = ref seed64 in
  let s0 = splitmix64 st in
  let s1 = splitmix64 st in
  let s2 = splitmix64 st in
  let s3 = splitmix64 st in
  (* xoshiro must not start from the all-zero state. *)
  if Int64.logor (Int64.logor s0 s1) (Int64.logor s2 s3) = 0L then
    { s0 = 1L; s1 = s1; s2 = s2; s3 = s3 }
  else { s0; s1; s2; s3 }

let create ~seed = of_seed64 (Int64.of_int seed)
let copy t = { s0 = t.s0; s1 = t.s1; s2 = t.s2; s3 = t.s3 }

let rotl x k =
  Int64.logor (Int64.shift_left x k) (Int64.shift_right_logical x (64 - k))

(* xoshiro256** next *)
let bits64 t =
  let open Int64 in
  let result = mul (rotl (mul t.s1 5L) 7) 9L in
  let tmp = shift_left t.s1 17 in
  t.s2 <- logxor t.s2 t.s0;
  t.s3 <- logxor t.s3 t.s1;
  t.s1 <- logxor t.s1 t.s2;
  t.s0 <- logxor t.s0 t.s3;
  t.s2 <- logxor t.s2 tmp;
  t.s3 <- rotl t.s3 45;
  result

let split t = of_seed64 (bits64 t)

let int t bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  (* Rejection sampling on the top bits to avoid modulo bias. *)
  let b = Int64.of_int bound in
  let rec draw () =
    let r = Int64.shift_right_logical (bits64 t) 1 in
    let v = Int64.rem r b in
    (* reject the tail of the last incomplete bucket *)
    if Int64.sub r v > Int64.sub (Int64.sub Int64.max_int b) 1L then draw ()
    else Int64.to_int v
  in
  draw ()

let int_in t ~lo ~hi =
  if hi < lo then invalid_arg "Prng.int_in: hi < lo";
  lo + int t (hi - lo + 1)

let float t bound =
  (* 53 random bits mapped to [0, 1). *)
  let r = Int64.shift_right_logical (bits64 t) 11 in
  let unit = Int64.to_float r *. 0x1.0p-53 in
  unit *. bound

let uniform t ~lo ~hi =
  if hi < lo then invalid_arg "Prng.uniform: hi < lo";
  lo +. float t (hi -. lo)

let bool t = Int64.logand (bits64 t) 1L = 1L

let bernoulli t ~p =
  if p <= 0. then false
  else if p >= 1. then true
  else float t 1. < p

let exponential t ~mean =
  let u = float t 1. in
  (* 1 - u is in (0, 1], so log is finite. *)
  -.mean *. log (1. -. u)

let choose t a =
  if Array.length a = 0 then invalid_arg "Prng.choose: empty array";
  a.(int t (Array.length a))

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let pick_distinct t n ~count =
  if count < 0 || count > n then invalid_arg "Prng.pick_distinct";
  (* Floyd's algorithm: O(count) expected draws, then sort. *)
  let seen = Hashtbl.create (2 * count) in
  for j = n - count to n - 1 do
    let r = int t (j + 1) in
    if Hashtbl.mem seen r then Hashtbl.replace seen j ()
    else Hashtbl.replace seen r ()
  done;
  Hashtbl.fold (fun k () acc -> k :: acc) seen []
  |> List.sort compare
