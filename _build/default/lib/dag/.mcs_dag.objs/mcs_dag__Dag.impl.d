lib/dag/dag.ml: Array Buffer Hashtbl List Mcs_util Printf
