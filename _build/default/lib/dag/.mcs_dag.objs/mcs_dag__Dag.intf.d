lib/dag/dag.mli:
