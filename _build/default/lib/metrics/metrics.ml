module Floatx = Mcs_util.Floatx

let slowdown ~own ~multi =
  if own <= 0. || multi <= 0. then
    invalid_arg "Metrics.slowdown: non-positive makespan";
  own /. multi

let average_slowdown slowdowns =
  if Array.length slowdowns = 0 then
    invalid_arg "Metrics.average_slowdown: no applications";
  Floatx.mean slowdowns

let unfairness slowdowns =
  let avg = average_slowdown slowdowns in
  Floatx.sum (Array.map (fun s -> Float.abs (s -. avg)) slowdowns)

let unfairness_of_makespans ~own ~multi =
  if Array.length own <> Array.length multi then
    invalid_arg "Metrics.unfairness_of_makespans: length mismatch";
  unfairness (Array.map2 (fun o m -> slowdown ~own:o ~multi:m) own multi)

let relative_makespan m ~best =
  if best <= 0. then invalid_arg "Metrics.relative_makespan: best <= 0";
  m /. best
