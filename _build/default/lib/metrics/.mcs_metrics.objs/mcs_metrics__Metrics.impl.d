lib/metrics/metrics.ml: Array Float Mcs_util
