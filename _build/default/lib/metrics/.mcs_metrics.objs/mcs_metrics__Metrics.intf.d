lib/metrics/metrics.mli:
