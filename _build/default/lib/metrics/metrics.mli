(** Evaluation metrics (Section 7).

    Fairness is assessed through the slowdown each application suffers
    from resource sharing. Following the paper (Eq. 3), the slowdown of
    application [a] is [M_own(a) / M_multi(a)] — the dedicated-platform
    makespan over the concurrent one — so values lie in (0, 1] with 1
    meaning "not perturbed at all". A schedule is fair when every
    application experiences a similar slowdown; unfairness (Eq. 5) is
    the L1 dispersion of slowdowns around their mean. *)

val slowdown : own:float -> multi:float -> float
(** [M_own / M_multi]. @raise Invalid_argument on non-positive
    makespans. *)

val average_slowdown : float array -> float
(** Eq. 4. @raise Invalid_argument on the empty array. *)

val unfairness : float array -> float
(** Eq. 5: [Σ_a |slowdown a − average|].
    @raise Invalid_argument on the empty array. *)

val unfairness_of_makespans : own:float array -> multi:float array -> float
(** Convenience composition of the above.
    @raise Invalid_argument on mismatched lengths. *)

val relative_makespan : float -> best:float -> float
(** Makespan divided by the best makespan achieved on the same
    experiment (≥ 1 when [best] is the minimum).
    @raise Invalid_argument if [best <= 0]. *)
