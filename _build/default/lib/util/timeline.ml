type t = {
  nb_procs : int;
  intervals : (float * float) list array;  (* per proc, sorted by start *)
}

let eps = 1e-9

let create ~procs =
  if procs < 1 then invalid_arg "Timeline.create: procs < 1";
  { nb_procs = procs; intervals = Array.make procs [] }

let procs t = t.nb_procs

let check_proc t proc =
  if proc < 0 || proc >= t.nb_procs then
    invalid_arg (Printf.sprintf "Timeline: processor %d out of range" proc)

let reserve t ~proc ~start ~finish =
  check_proc t proc;
  if Float.is_nan start || Float.is_nan finish || finish < start then
    invalid_arg "Timeline.reserve: ill-formed interval";
  if finish -. start <= eps then ()
  else begin
    let rec insert = function
      | [] -> [ (start, finish) ]
      | (s, f) :: rest when f <= start +. eps -> (s, f) :: insert rest
      | (s, f) :: rest ->
        if s >= finish -. eps then (start, finish) :: (s, f) :: rest
        else
          invalid_arg
            (Printf.sprintf
               "Timeline.reserve: [%g, %g) overlaps [%g, %g) on processor %d"
               start finish s f proc)
    in
    t.intervals.(proc) <- insert t.intervals.(proc)
  end

let is_free t ~proc ~start ~finish =
  check_proc t proc;
  if finish -. start <= eps then true
  else
    List.for_all
      (fun (s, f) -> f <= start +. eps || s >= finish -. eps)
      t.intervals.(proc)

let free_at t ~proc ~at ~duration =
  is_free t ~proc ~start:at ~finish:(at +. duration)

let next_candidates t ~after =
  let ends = ref [ after ] in
  Array.iter
    (List.iter (fun (_, f) -> if f > after +. eps then ends := f :: !ends))
    t.intervals;
  List.sort_uniq Float.compare !ends

(* End of the last reservation on [proc] that finishes at or before [at]
   (0 when idle since the origin) — the best-fit key. *)
let previous_end t ~proc ~at =
  List.fold_left
    (fun acc (_, f) -> if f <= at +. eps then Float.max acc f else acc)
    0. t.intervals.(proc)

let find_slot ?procs_subset t ~count ~duration ~after =
  let candidates_procs =
    match procs_subset with
    | Some a -> a
    | None -> Array.init t.nb_procs (fun p -> p)
  in
  if count < 1 || count > Array.length candidates_procs then None
  else begin
    let rec try_times = function
      | [] -> None
      | start :: rest ->
        let free =
          Array.to_list candidates_procs
          |> List.filter (fun p -> free_at t ~proc:p ~at:start ~duration)
        in
        if List.length free >= count then begin
          (* Best fit: latest previous reservation end first. *)
          let keyed =
            List.map (fun p -> (previous_end t ~proc:p ~at:start, p)) free
          in
          let sorted =
            List.sort
              (fun (e1, p1) (e2, p2) ->
                let c = Float.compare e2 e1 in
                if c <> 0 then c else compare p1 p2)
              keyed
          in
          let chosen =
            List.filteri (fun i _ -> i < count) sorted
            |> List.map snd |> List.sort compare |> Array.of_list
          in
          Some (start, chosen)
        end
        else try_times rest
    in
    try_times (next_candidates t ~after)
  end

let busy_intervals t ~proc =
  check_proc t proc;
  t.intervals.(proc)
