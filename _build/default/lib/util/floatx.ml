let eps = 1e-9

let approx_eq ?(tol = eps) a b =
  let d = Float.abs (a -. b) in
  d <= tol || d <= tol *. Float.max (Float.abs a) (Float.abs b)

let ( <=. ) a b = a <= b +. eps
let ( >=. ) a b = a >= b -. eps
let ( <. ) a b = a < b -. eps
let ( >. ) a b = a > b +. eps

let clamp ~lo ~hi x =
  if x < lo then lo else if x > hi then hi else x

(* Kahan summation: the correction term [c] accumulates the low-order
   bits lost when adding small values to a large running total. *)
let sum a =
  let total = ref 0. and c = ref 0. in
  for i = 0 to Array.length a - 1 do
    let y = a.(i) -. !c in
    let t = !total +. y in
    c := t -. !total -. y;
    total := t
  done;
  !total

let sum_list l = sum (Array.of_list l)

let mean a =
  let n = Array.length a in
  if n = 0 then 0. else sum a /. float_of_int n

let stddev a =
  let n = Array.length a in
  if n < 2 then 0.
  else begin
    let m = mean a in
    let acc = Array.map (fun x -> (x -. m) *. (x -. m)) a in
    sqrt (sum acc /. float_of_int (n - 1))
  end

let median a =
  let n = Array.length a in
  if n = 0 then 0.
  else begin
    let b = Array.copy a in
    Array.sort Float.compare b;
    if n mod 2 = 1 then b.(n / 2)
    else (b.((n / 2) - 1) +. b.(n / 2)) /. 2.
  end

let minimum a =
  if Array.length a = 0 then invalid_arg "Floatx.minimum: empty array";
  Array.fold_left Float.min a.(0) a

let maximum a =
  if Array.length a = 0 then invalid_arg "Floatx.maximum: empty array";
  Array.fold_left Float.max a.(0) a
