lib/util/table.mli:
