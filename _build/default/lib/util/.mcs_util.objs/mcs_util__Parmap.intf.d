lib/util/parmap.mli:
