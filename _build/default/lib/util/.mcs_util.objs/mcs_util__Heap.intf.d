lib/util/heap.mli:
