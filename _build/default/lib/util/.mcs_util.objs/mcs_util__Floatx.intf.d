lib/util/floatx.mli:
