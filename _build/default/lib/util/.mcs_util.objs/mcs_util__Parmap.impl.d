lib/util/parmap.ml: Array Atomic Domain List Sys
