lib/util/timeline.mli:
