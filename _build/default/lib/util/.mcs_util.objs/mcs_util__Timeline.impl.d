lib/util/timeline.ml: Array Float List Printf
