(** Parallel map over independent work items using OCaml 5 domains.

    Work items are drawn from a shared atomic counter so uneven item
    costs balance across domains; results keep the input order. The
    mapped function must be pure or touch only item-local state (every
    use in this repository maps over self-contained scenarios carrying
    their own PRNG).

    The domain count is [MCS_DOMAINS] when set, otherwise
    [Domain.recommended_domain_count ()], capped at 8; 1 degrades to
    [List.map]. *)

val domain_count : unit -> int
(** The effective parallelism used by {!map}. *)

val map : ?domains:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map f l] is [List.map f l] computed on several domains. The first
    exception raised by any worker is re-raised after all domains have
    joined. *)
