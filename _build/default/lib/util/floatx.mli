(** Floating-point helpers shared across the scheduling and simulation
    code. All comparisons in schedule construction go through these to
    keep tolerance handling in one place. *)

val eps : float
(** Absolute tolerance used for schedule-time comparisons (1e-9 s). *)

val approx_eq : ?tol:float -> float -> float -> bool
(** [approx_eq a b] is [true] when [a] and [b] differ by at most [tol]
    (default {!eps}) in absolute value, or by [tol] relatively for large
    magnitudes. *)

val ( <=. ) : float -> float -> bool
(** [a <=. b] is tolerant [<=]: true when [a <= b +. eps]. *)

val ( >=. ) : float -> float -> bool
(** [a >=. b] is tolerant [>=]: true when [a >= b -. eps]. *)

val ( <. ) : float -> float -> bool
(** [a <. b] is strict [<] beyond tolerance: [a < b -. eps]. *)

val ( >. ) : float -> float -> bool
(** [a >. b] is strict [>] beyond tolerance: [a > b +. eps]. *)

val clamp : lo:float -> hi:float -> float -> float
(** [clamp ~lo ~hi x] restricts [x] to the closed interval [lo, hi]. *)

val sum : float array -> float
(** Kahan-compensated sum of an array. *)

val sum_list : float list -> float
(** Kahan-compensated sum of a list. *)

val mean : float array -> float
(** Arithmetic mean; 0 on the empty array. *)

val stddev : float array -> float
(** Sample standard deviation (n-1 denominator); 0 for fewer than two
    elements. *)

val median : float array -> float
(** Median (average of the middle pair for even sizes); 0 on empty. *)

val minimum : float array -> float
(** Smallest element. @raise Invalid_argument on the empty array. *)

val maximum : float array -> float
(** Largest element. @raise Invalid_argument on the empty array. *)
