type t = {
  title : string;
  header : string list;
  mutable rows : string list list; (* reverse order *)
}

let create ~title ~header = { title; header; rows = [] }

let add_row t row =
  if List.length row <> List.length t.header then
    invalid_arg
      (Printf.sprintf "Table.add_row: %d cells for %d columns"
         (List.length row) (List.length t.header));
  t.rows <- row :: t.rows

let fmt_float ?(digits = 4) x =
  if Float.is_nan x then "-" else Printf.sprintf "%.*g" digits x

let add_float_row t ?(fmt = fmt_float ?digits:None) label xs =
  add_row t (label :: List.map fmt xs);
  t

let render t =
  let rows = List.rev t.rows in
  let all = t.header :: rows in
  let ncols = List.length t.header in
  let widths = Array.make ncols 0 in
  let measure row =
    List.iteri
      (fun i cell -> widths.(i) <- max widths.(i) (String.length cell))
      row
  in
  List.iter measure all;
  let buf = Buffer.create 1024 in
  Buffer.add_string buf t.title;
  Buffer.add_char buf '\n';
  let pad i cell =
    let missing = widths.(i) - String.length cell in
    cell ^ String.make (max 0 missing) ' '
  in
  let emit row =
    Buffer.add_string buf (String.concat "  " (List.mapi pad row));
    Buffer.add_char buf '\n'
  in
  emit t.header;
  let total =
    Array.fold_left ( + ) 0 widths + (2 * (max 0 (ncols - 1)))
  in
  Buffer.add_string buf (String.make total '-');
  Buffer.add_char buf '\n';
  List.iter emit rows;
  Buffer.contents buf

let print t =
  print_string (render t);
  print_newline ()
