(** Plain-text table rendering for the experiment harness.

    Tables are built row by row from strings and rendered with aligned
    columns, in the spirit of the rows/series the paper reports. *)

type t

val create : title:string -> header:string list -> t
(** New table with a caption line and column names. *)

val add_row : t -> string list -> unit
(** Append a row. @raise Invalid_argument if the row width differs from
    the header width. *)

val add_float_row : t -> ?fmt:(float -> string) -> string -> float list -> t
(** [add_float_row t label xs] appends [label :: map fmt xs] and returns
    [t] for chaining. Default format is ["%.4g"]. *)

val render : t -> string
(** Render with a title line, a separator, and padded columns. *)

val print : t -> unit
(** [render] to stdout followed by a blank line. *)

val fmt_float : ?digits:int -> float -> string
(** Fixed-precision float formatting helper (default 4 significant
    digits, ["-"] for NaN). *)
