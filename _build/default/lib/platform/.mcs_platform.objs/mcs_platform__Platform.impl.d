lib/platform/platform.ml: Array Buffer Float Format List Printf
