lib/platform/grid5000.mli: Platform
