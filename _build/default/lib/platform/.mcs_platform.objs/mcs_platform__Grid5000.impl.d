lib/platform/grid5000.ml: Platform String
