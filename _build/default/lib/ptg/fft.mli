(** Fast Fourier Transform PTG, in the classical form used by the PTG
    scheduling literature (Topcuoglu et al.): for a transform over
    [points = 2^k] sub-vectors,

    - a binary recursive-decomposition tree of [2·points − 1] tasks
      (the task at tree level [l] splits a vector of [d/2^l] elements;
      sort-like cost [a·d'·log2 d']),
    - followed by [k] butterfly stages of [points] tasks each
      ([d/points] elements, linear cost).

    Total: [2·points − 1 + points·k] tasks — 15, 39 and 95 tasks for 4,
    8 and 16 points. The paper quotes "15, 37 and 95"; 37 is
    inconsistent with any closed form matching 15 and 95 and is treated
    as a typo for 39 (see DESIGN.md). Every task of a level has the same
    cost, making these PTGs very regular. *)

val task_count : points:int -> int
(** [2·points − 1 + points·log2 points].
    @raise Invalid_argument unless [points] is a power of two ≥ 2. *)

val generate :
  ?id:int -> ?data:float -> points:int -> Mcs_prng.Prng.t -> Ptg.t
(** [generate ~points rng] draws the total vector size uniformly in
    [[Task.d_min, Task.d_max]] unless [data] is given. One Amdahl
    fraction is drawn per level (all tasks of a level share it, keeping
    per-level costs identical).
    @raise Invalid_argument unless [points] is a power of two ≥ 2. *)

val paper_sizes : int list
(** [[4; 8; 16]] — the three FFT configurations of Section 7. *)
