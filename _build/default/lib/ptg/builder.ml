module Dag = Mcs_dag.Dag
module Task = Mcs_taskmodel.Task

let build ~id ~name ~tasks ~edges =
  let n = Array.length tasks in
  if n = 0 then invalid_arg "Builder.build: a PTG needs at least one task";
  (* Merge duplicate (src, dst) pairs, keeping the largest volume, and
     sort so byte volumes line up with [Dag.of_edges] edge ids (which are
     assigned in sorted (src, dst) order). *)
  let table = Hashtbl.create (List.length edges) in
  List.iter
    (fun (s, d, b) ->
      match Hashtbl.find_opt table (s, d) with
      | Some b' when b' >= b -> ()
      | _ -> Hashtbl.replace table (s, d) b)
    edges;
  let merged =
    Hashtbl.fold (fun (s, d) b acc -> (s, d, b) :: acc) table []
    |> List.sort compare
  in
  (* Detect sources and sinks among real nodes. *)
  let has_pred = Array.make n false and has_succ = Array.make n false in
  List.iter
    (fun (s, d, _) ->
      if s >= 0 && s < n then has_succ.(s) <- true;
      if d >= 0 && d < n then has_pred.(d) <- true)
    merged;
  let sources = ref [] and sinks = ref [] in
  for v = n - 1 downto 0 do
    if not has_pred.(v) then sources := v :: !sources;
    if not has_succ.(v) then sinks := v :: !sinks
  done;
  let need_entry = match !sources with [ _ ] -> false | _ -> true in
  let need_exit = match !sinks with [ _ ] -> false | _ -> true in
  let entry_id = n in
  let exit_id = if need_entry then n + 1 else n in
  let total =
    n + (if need_entry then 1 else 0) + if need_exit then 1 else 0
  in
  let all_tasks = Array.make (max total 1) Task.zero in
  Array.blit tasks 0 all_tasks 0 n;
  let virtual_edges =
    (if need_entry then List.map (fun v -> (entry_id, v, 0.)) !sources else [])
    @ if need_exit then List.map (fun v -> (v, exit_id, 0.)) !sinks else []
  in
  let final_edges = List.sort compare (merged @ virtual_edges) in
  let dag =
    Dag.of_edges ~n:total (List.map (fun (s, d, _) -> (s, d)) final_edges)
  in
  let edge_bytes =
    Array.make (Dag.edge_count dag) 0.
  in
  List.iter
    (fun (s, d, b) ->
      match Dag.edge_id dag ~src:s ~dst:d with
      | Some e -> edge_bytes.(e) <- b
      | None -> assert false)
    final_edges;
  Ptg.create ~id ~name ~dag ~tasks:all_tasks ~edge_bytes
