(** Shared machinery for PTG generators.

    Takes a raw task/edge description, adds zero-cost virtual entry/exit
    tasks when the structure has several sources or sinks, and produces a
    validated {!Ptg.t} whose edge-byte array is aligned with the DAG's
    edge identifiers. *)

val build :
  id:int ->
  name:string ->
  tasks:Mcs_taskmodel.Task.t array ->
  edges:(int * int * float) list ->
  Ptg.t
(** [build ~id ~name ~tasks ~edges] where each edge is
    [(src, dst, bytes)]. Duplicate [(src, dst)] pairs are merged keeping
    the largest volume. Virtual edges added towards/from the virtual
    entry/exit carry no data.
    @raise Invalid_argument on inconsistent input (see {!Ptg.create}).
    @raise Mcs_dag.Dag.Cycle if the edges contain a cycle. *)
