(** Parallel task graphs: DAGs whose nodes are moldable data-parallel
    tasks ({!Mcs_taskmodel.Task}) and whose edges carry the volume of
    data exchanged between tasks.

    Every PTG has a single entry and a single exit task (the generators
    add zero-cost virtual tasks when the underlying structure has several
    sources or sinks), matching the paper's model. *)

type t = private {
  id : int;                  (** identifier within a scenario *)
  name : string;
  dag : Mcs_dag.Dag.t;
  tasks : Mcs_taskmodel.Task.t array;  (** per node *)
  edge_bytes : float array;            (** per edge id, bytes *)
}

val create :
  id:int ->
  name:string ->
  dag:Mcs_dag.Dag.t ->
  tasks:Mcs_taskmodel.Task.t array ->
  edge_bytes:float array ->
  t
(** @raise Invalid_argument when array lengths disagree with the DAG,
    when the DAG does not have exactly one source and one sink, or when
    a byte volume is negative. *)

val with_id : t -> int -> t
(** Same PTG under a different scenario identifier. *)

val task_count : t -> int
(** Number of real (non-virtual) tasks. *)

val node_count : t -> int
(** Number of DAG nodes, virtual entry/exit included. *)

val entry : t -> int
(** The single source node. *)

val exit : t -> int
(** The single sink node. *)

val is_virtual : t -> int -> bool
(** True for the zero-cost entry/exit nodes added by generators. *)

val work : t -> float
(** Total flops over all tasks — the γ of the [work] strategies. *)

val max_width : t -> int
(** Largest precedence-level population counting only real tasks — the
    γ of the [width] strategies. *)

val critical_path_seq : t -> gflops:float -> float
(** Length (seconds) of the critical path when every task runs on a
    single processor of speed [gflops], communications excluded — the γ
    of the [cp] strategies. *)

val bottom_levels_seq : t -> gflops:float -> float array
(** Bottom levels under 1-processor execution times, communications
    excluded. *)

val edge_bytes_between : t -> src:int -> dst:int -> float
(** Bytes on the edge [src -> dst]; 0. when no such edge exists. *)

val pp : Format.formatter -> t -> unit

val to_dot : t -> string
(** Graphviz rendering with task labels and data volumes. *)
