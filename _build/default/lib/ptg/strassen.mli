(** Strassen matrix-multiplication PTG (one recursion level, 25 tasks).

    C = A·B on √d×√d blocks via Strassen's seven products:
    - 10 block additions/subtractions S1..S10 ([d] flops each),
    - 7 block multiplications P1..P7 ([d^1.5] flops each),
    - 8 combination additions (U1, U2, C11, C12, C21, U3, U4, C22).

    All Strassen PTGs share this fixed shape — same task count and same
    maximal width — so, as noted in Section 7, the width-based strategies
    degenerate to ES on them; instances only differ in block size [d]
    and per-task Amdahl fractions. *)

val task_count : int
(** 25 (excluding the virtual entry/exit). *)

val generate :
  ?id:int -> ?data:float -> Mcs_prng.Prng.t -> Ptg.t
(** [generate rng] draws the block size uniformly in
    [[Task.d_min, Task.d_max]] unless [data] is given, and draws a fresh
    Amdahl fraction per task. *)
