module Dag = Mcs_dag.Dag
module Task = Mcs_taskmodel.Task

type t = {
  id : int;
  name : string;
  dag : Dag.t;
  tasks : Task.t array;
  edge_bytes : float array;
}

let create ~id ~name ~dag ~tasks ~edge_bytes =
  let n = Dag.node_count dag in
  if Array.length tasks <> n then
    invalid_arg
      (Printf.sprintf "Ptg.create %s: %d tasks for %d nodes" name
         (Array.length tasks) n);
  if Array.length edge_bytes <> Dag.edge_count dag then
    invalid_arg
      (Printf.sprintf "Ptg.create %s: %d byte entries for %d edges" name
         (Array.length edge_bytes) (Dag.edge_count dag));
  Array.iter
    (fun b -> if b < 0. then invalid_arg "Ptg.create: negative edge volume")
    edge_bytes;
  (match (Dag.sources dag, Dag.sinks dag) with
  | [ _ ], [ _ ] -> ()
  | srcs, snks ->
    invalid_arg
      (Printf.sprintf "Ptg.create %s: %d sources and %d sinks (need 1 and 1)"
         name (List.length srcs) (List.length snks)));
  { id; name; dag; tasks; edge_bytes }

let with_id t id = { t with id }

let node_count t = Dag.node_count t.dag

let is_virtual t v = Task.is_zero t.tasks.(v)

let task_count t =
  let count = ref 0 in
  for v = 0 to node_count t - 1 do
    if not (is_virtual t v) then incr count
  done;
  !count

let entry t =
  match Dag.sources t.dag with
  | [ v ] -> v
  | _ -> assert false (* enforced by [create] *)

let exit t =
  match Dag.sinks t.dag with
  | [ v ] -> v
  | _ -> assert false

let work t =
  Mcs_util.Floatx.sum (Array.map Task.flops t.tasks)

let max_width t =
  let levels = Dag.depth_levels t.dag in
  let d = Dag.depth t.dag in
  if d = 0 then 0
  else begin
    let counts = Array.make d 0 in
    for v = 0 to node_count t - 1 do
      if not (is_virtual t v) then
        counts.(levels.(v)) <- counts.(levels.(v)) + 1
    done;
    Array.fold_left max 0 counts
  end

let bottom_levels_seq t ~gflops =
  Dag.bottom_levels t.dag
    ~node_weight:(fun v ->
      if is_virtual t v then 0. else Task.seq_time t.tasks.(v) ~gflops)
    ~edge_weight:(fun _ -> 0.)

let critical_path_seq t ~gflops =
  let bl = bottom_levels_seq t ~gflops in
  bl.(entry t)

let edge_bytes_between t ~src ~dst =
  match Dag.edge_id t.dag ~src ~dst with
  | None -> 0.
  | Some e -> t.edge_bytes.(e)

let pp ppf t =
  Format.fprintf ppf "%s#%d: %d tasks, depth %d, width %d, %.3g Gflop" t.name
    t.id (task_count t) (Dag.depth t.dag) (max_width t) (work t /. 1e9)

let to_dot t =
  Dag.to_dot ~graph_name:(Printf.sprintf "ptg_%d" t.id)
    ~node_label:(fun v ->
      if is_virtual t v then Printf.sprintf "v%d (virtual)" v
      else Format.asprintf "v%d: %a" v Task.pp t.tasks.(v))
    ~edge_label:(fun e -> Printf.sprintf "%.1fMB" (t.edge_bytes.(e) /. 1e6))
    t.dag
