module Prng = Mcs_prng.Prng
module Task = Mcs_taskmodel.Task

type params = {
  tasks : int;
  width : float;
  regularity : float;
  density : float;
  jump : int;
  class_ : Task.complexity_class;
}

let default =
  {
    tasks = 20;
    width = 0.5;
    regularity = 0.5;
    density = 0.5;
    jump = 1;
    class_ = Task.Class_mixed;
  }

let validate p =
  if p.tasks < 1 then invalid_arg "Random_gen: tasks < 1";
  let check01 label x =
    if x <= 0. || x > 1. then
      invalid_arg (Printf.sprintf "Random_gen: %s outside (0, 1]" label)
  in
  check01 "width" p.width;
  check01 "regularity" p.regularity;
  check01 "density" p.density;
  if p.jump < 1 then invalid_arg "Random_gen: jump < 1"

(* Split [p.tasks] tasks into levels whose sizes hover around n^width,
   modulated by regularity. *)
let draw_level_sizes rng p =
  let n = p.tasks in
  let mean = Float.max 1. (float_of_int n ** p.width) in
  let lo = max 1 (int_of_float (Float.round (mean *. p.regularity))) in
  let hi =
    max lo (int_of_float (Float.round (mean *. (2. -. p.regularity))))
  in
  let rec loop remaining acc =
    if remaining = 0 then List.rev acc
    else begin
      let size = min remaining (Prng.int_in rng ~lo ~hi) in
      loop (remaining - size) (size :: acc)
    end
  in
  loop n []

let generate ?(id = 0) ?name rng p =
  validate p;
  let name =
    match name with
    | Some s -> s
    | None -> Printf.sprintf "random-n%d-w%.1f" p.tasks p.width
  in
  let sizes = Array.of_list (draw_level_sizes rng p) in
  let nlevels = Array.length sizes in
  (* Node ids level by level. *)
  let first = Array.make nlevels 0 in
  let total = ref 0 in
  Array.iteri
    (fun l s ->
      first.(l) <- !total;
      total := !total + s)
    sizes;
  let tasks = Array.init !total (fun _ -> Task.random rng ~class_:p.class_) in
  let edges = ref [] in
  let add_edge u v =
    edges := (u, v, Task.bytes tasks.(u)) :: !edges
  in
  (* Inter-level edges driven by density. *)
  for l = 1 to nlevels - 1 do
    for i = 0 to sizes.(l) - 1 do
      let v = first.(l) + i in
      let parent_count = ref 0 in
      for j = 0 to sizes.(l - 1) - 1 do
        let u = first.(l - 1) + j in
        if Prng.bernoulli rng ~p:p.density then begin
          add_edge u v;
          incr parent_count
        end
      done;
      if !parent_count = 0 then begin
        let u = first.(l - 1) + Prng.int rng sizes.(l - 1) in
        add_edge u v
      end
    done
  done;
  (* Jump edges from level l - jump to level l. *)
  if p.jump > 1 then
    for l = p.jump to nlevels - 1 do
      for i = 0 to sizes.(l) - 1 do
        let v = first.(l) + i in
        if Prng.bernoulli rng ~p:(p.density /. 2.) then begin
          let u = first.(l - p.jump) + Prng.int rng sizes.(l - p.jump) in
          add_edge u v
        end
      done
    done;
  Builder.build ~id ~name ~tasks ~edges:!edges

let paper_grid class_ =
  let tasks = [ 10; 20; 50 ] in
  let widths = [ 0.2; 0.5; 0.8 ] in
  let regs = [ 0.2; 0.8 ] in
  let dens = [ 0.2; 0.8 ] in
  let jumps = [ 1; 2; 4 ] in
  List.concat_map
    (fun t ->
      List.concat_map
        (fun w ->
          List.concat_map
            (fun r ->
              List.concat_map
                (fun d ->
                  List.map
                    (fun j ->
                      {
                        tasks = t;
                        width = w;
                        regularity = r;
                        density = d;
                        jump = j;
                        class_;
                      })
                    jumps)
                dens)
            regs)
        widths)
    tasks
