module Prng = Mcs_prng.Prng
module Task = Mcs_taskmodel.Task

let task_count = 25

(* Node numbering: S1..S10 = 0..9, P1..P7 = 10..16, then
   U1 U2 C11 C12 C21 U3 U4 C22 = 17..24. *)
let s i = i - 1
let p i = 9 + i
let u1 = 17
let u2 = 18
let c11 = 19
let c12 = 20
let c21 = 21
let u3 = 22
let u4 = 23
let c22 = 24

let generate ?(id = 0) ?data rng =
  let d =
    match data with
    | Some d ->
      if d <= 0. then invalid_arg "Strassen.generate: non-positive data";
      d
    | None -> Prng.uniform rng ~lo:Task.d_min ~hi:Task.d_max
  in
  let add_task () =
    (* A block addition: d flops on d elements — stencil with a = 1. *)
    Task.make ~data:d ~complexity:(Stencil 1.)
      ~alpha:(Prng.uniform rng ~lo:0. ~hi:Task.alpha_max)
  in
  let mul_task () =
    Task.make ~data:d ~complexity:Matmul
      ~alpha:(Prng.uniform rng ~lo:0. ~hi:Task.alpha_max)
  in
  let tasks =
    Array.init task_count (fun v ->
        if v >= 10 && v <= 16 then mul_task () else add_task ())
  in
  let vol = 8. *. d in
  let dep u v = (u, v, vol) in
  let edges =
    [
      (* P1 = (A11+A22)(B11+B22) = S1·S2 *)
      dep (s 1) (p 1); dep (s 2) (p 1);
      (* P2 = (A21+A22)·B11 = S3·B11 *)
      dep (s 3) (p 2);
      (* P3 = A11·(B12−B22) = A11·S4 *)
      dep (s 4) (p 3);
      (* P4 = A22·(B21−B11) = A22·S5 *)
      dep (s 5) (p 4);
      (* P5 = (A11+A12)·B22 = S6·B22 *)
      dep (s 6) (p 5);
      (* P6 = (A21−A11)(B11+B12) = S7·S8 *)
      dep (s 7) (p 6); dep (s 8) (p 6);
      (* P7 = (A12−A22)(B21+B22) = S9·S10 *)
      dep (s 9) (p 7); dep (s 10) (p 7);
      (* C11 = P1 + P4 − P5 + P7 *)
      dep (p 1) u1; dep (p 4) u1;
      dep u1 u2; dep (p 5) u2;
      dep u2 c11; dep (p 7) c11;
      (* C12 = P3 + P5 *)
      dep (p 3) c12; dep (p 5) c12;
      (* C21 = P2 + P4 *)
      dep (p 2) c21; dep (p 4) c21;
      (* C22 = P1 − P2 + P3 + P6 *)
      dep (p 1) u3; dep (p 2) u3;
      dep u3 u4; dep (p 3) u4;
      dep u4 c22; dep (p 6) c22;
    ]
  in
  Builder.build ~id ~name:"strassen" ~tasks ~edges
