(** Random layered PTG generator — reimplementation of the four-parameter
    model of Suter's DAG generation program used by the paper
    (Section 2): width, regularity, density and jumps.

    - The mean number of tasks per precedence level is [n^width]
      (width 0.2 gives chain-like graphs, 0.8 fork-join-like ones).
    - Regularity [r] modulates per-level deviation: level populations are
      drawn uniformly in [[m·r, m·(2−r)]].
    - Density [p] controls inter-level connectivity: each task of level
      [l] independently receives an edge from each task of level [l−1]
      with probability [p]; a task with no parent drawn is given one
      uniformly (so only the added entry node is a source).
    - Jump [j > 1] adds edges skipping levels: each task at level
      [l ≥ j] receives, with probability [p/2], one edge from a random
      task at level [l−j]. [j = 1] adds nothing (no level is jumped). *)

type params = {
  tasks : int;                                  (** number of real tasks *)
  width : float;                                (** in (0, 1] *)
  regularity : float;                           (** in (0, 1] *)
  density : float;                              (** in (0, 1] *)
  jump : int;                                   (** 1, 2 or 4 in the paper *)
  class_ : Mcs_taskmodel.Task.complexity_class; (** task cost scenario *)
}

val default : params
(** 20 mixed tasks, width 0.5, regularity 0.5, density 0.5, jump 1. *)

val validate : params -> unit
(** @raise Invalid_argument when a parameter is out of range. *)

val generate : ?id:int -> ?name:string -> Mcs_prng.Prng.t -> params -> Ptg.t
(** Draw a PTG. Deterministic in the generator state. *)

val paper_grid : Mcs_taskmodel.Task.complexity_class -> params list
(** The paper's synthetic-workload grid: tasks ∈ {10, 20, 50}, width ∈
    {0.2, 0.5, 0.8}, regularity and density ∈ {0.2, 0.8}, jump ∈
    {1, 2, 4} — 108 combinations for a given cost scenario. *)
