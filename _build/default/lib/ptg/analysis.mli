(** Structural and cost analysis of a PTG — the quantities the paper's
    strategies and discussion revolve around, gathered in one report
    (used by the CLI's [--summary] mode, the examples, and tests). *)

type t = {
  tasks : int;              (** real tasks *)
  depth : int;              (** precedence levels (virtual included) *)
  max_width : int;          (** the width-strategy γ *)
  total_work : float;       (** flops — the work-strategy γ *)
  critical_path_flops : float;
      (** flops along the 1-processor critical path *)
  total_bytes : float;      (** Σ edge volumes *)
  comm_to_comp : float;
      (** bytes/flops — how communication-bound the application is *)
  avg_parallelism : float;
      (** total work over critical-path work: the average number of
          processors the PTG could keep busy *)
  level_widths : int array; (** real tasks per precedence level *)
  edge_count : int;         (** real data edges (virtual excluded) *)
}

val analyse : Ptg.t -> t

val pp : Format.formatter -> t -> unit
(** Multi-line human-readable report. *)
