module Prng = Mcs_prng.Prng
module Task = Mcs_taskmodel.Task

let log2_exact points =
  if points < 2 then invalid_arg "Fft: points must be >= 2";
  let rec loop v acc =
    if v = 1 then acc
    else if v mod 2 <> 0 then invalid_arg "Fft: points must be a power of two"
    else loop (v / 2) (acc + 1)
  in
  loop points 0

let task_count ~points =
  let k = log2_exact points in
  (2 * points) - 1 + (points * k)

let paper_sizes = [ 4; 8; 16 ]

let generate ?(id = 0) ?data ~points rng =
  let k = log2_exact points in
  let d =
    match data with
    | Some d ->
      if d <= 0. then invalid_arg "Fft.generate: non-positive data";
      d
    | None -> Prng.uniform rng ~lo:Task.d_min ~hi:Task.d_max
  in
  (* Tree node (l, i): l in [0, k], i in [0, 2^l). Ids assigned level by
     level: tree level l starts at 2^l - 1. Butterfly stage j in [1, k]
     has [points] tasks starting at tree_total + (j-1)·points. *)
  let tree_total = (2 * points) - 1 in
  let tree_id l i = (1 lsl l) - 1 + i in
  let fly_id j i = tree_total + ((j - 1) * points) + i in
  let total = tree_total + (points * k) in
  let tasks = Array.make total Task.zero in
  (* Per-level Amdahl fractions: k+1 tree levels then k butterfly stages. *)
  let tree_alpha =
    Array.init (k + 1) (fun _ -> Prng.uniform rng ~lo:0. ~hi:Task.alpha_max)
  in
  let fly_alpha =
    Array.init k (fun _ -> Prng.uniform rng ~lo:0. ~hi:Task.alpha_max)
  in
  let a = Prng.uniform rng ~lo:Task.a_min ~hi:Task.a_max in
  for l = 0 to k do
    let dl = d /. float_of_int (1 lsl l) in
    for i = 0 to (1 lsl l) - 1 do
      tasks.(tree_id l i) <-
        Task.make ~data:dl ~complexity:(Sort a) ~alpha:tree_alpha.(l)
    done
  done;
  let dfly = d /. float_of_int points in
  for j = 1 to k do
    for i = 0 to points - 1 do
      tasks.(fly_id j i) <-
        Task.make ~data:dfly ~complexity:(Stencil a) ~alpha:fly_alpha.(j - 1)
    done
  done;
  let edges = ref [] in
  let add u v bytes = edges := (u, v, bytes) :: !edges in
  (* Recursive decomposition: each tree task sends half its data to each
     child. *)
  for l = 0 to k - 1 do
    let child_bytes = 8. *. (d /. float_of_int (1 lsl (l + 1))) in
    for i = 0 to (1 lsl l) - 1 do
      add (tree_id l i) (tree_id (l + 1) (2 * i)) child_bytes;
      add (tree_id l i) (tree_id (l + 1) ((2 * i) + 1)) child_bytes
    done
  done;
  (* Leaves feed the first butterfly stage; each butterfly stage j
     combines elements whose index differs in bit j-1. *)
  let fly_bytes = 8. *. dfly in
  for i = 0 to points - 1 do
    add (tree_id k i) (fly_id 1 i) fly_bytes;
    add (tree_id k (i lxor 1)) (fly_id 1 i) fly_bytes
  done;
  for j = 2 to k do
    let bit = 1 lsl (j - 1) in
    for i = 0 to points - 1 do
      add (fly_id (j - 1) i) (fly_id j i) fly_bytes;
      add (fly_id (j - 1) (i lxor bit)) (fly_id j i) fly_bytes
    done
  done;
  Builder.build ~id ~name:(Printf.sprintf "fft-%dpt" points) ~tasks
    ~edges:!edges
