lib/ptg/builder.mli: Mcs_taskmodel Ptg
