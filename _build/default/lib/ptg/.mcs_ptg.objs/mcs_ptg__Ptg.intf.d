lib/ptg/ptg.mli: Format Mcs_dag Mcs_taskmodel
