lib/ptg/fft.ml: Array Builder Mcs_prng Mcs_taskmodel Printf
