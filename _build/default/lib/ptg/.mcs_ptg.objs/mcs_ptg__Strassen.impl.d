lib/ptg/strassen.ml: Array Builder Mcs_prng Mcs_taskmodel
