lib/ptg/analysis.ml: Array Format List Mcs_dag Mcs_taskmodel Mcs_util Ptg String
