lib/ptg/random_gen.mli: Mcs_prng Mcs_taskmodel Ptg
