lib/ptg/strassen.mli: Mcs_prng Ptg
