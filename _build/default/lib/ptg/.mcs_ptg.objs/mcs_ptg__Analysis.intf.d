lib/ptg/analysis.mli: Format Ptg
