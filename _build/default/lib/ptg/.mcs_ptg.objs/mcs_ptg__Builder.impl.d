lib/ptg/builder.ml: Array Hashtbl List Mcs_dag Mcs_taskmodel Ptg
