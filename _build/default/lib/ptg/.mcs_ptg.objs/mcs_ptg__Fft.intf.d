lib/ptg/fft.mli: Mcs_prng Ptg
