lib/ptg/ptg.ml: Array Format List Mcs_dag Mcs_taskmodel Mcs_util Printf
