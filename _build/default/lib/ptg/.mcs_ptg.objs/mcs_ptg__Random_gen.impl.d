lib/ptg/random_gen.ml: Array Builder Float List Mcs_prng Mcs_taskmodel Printf
