(* Custom platform: the library is not tied to the Grid'5000 subsets.
   This example models a small university machine room — two generations
   of clusters plus a GPU-era fat cluster, each on its own switch — and
   studies how a Strassen kernel's makespan and efficiency evolve with
   the resource constraint beta, reproducing in miniature the trade-off
   SCRAP-MAX is built around. It also exports one PTG to Graphviz.

   Run with: dune exec examples/custom_platform.exe *)

module P = Mcs_platform.Platform
module Ptg = Mcs_ptg.Ptg
module Reference_cluster = Mcs_sched.Reference_cluster
module Allocation = Mcs_sched.Allocation
module List_mapper = Mcs_sched.List_mapper
module Schedule = Mcs_sched.Schedule
module Table = Mcs_util.Table

let () =
  let platform =
    P.make ~name:"machine-room" ~latency:5e-5
      [
        { P.cluster_name = "old-xeon"; procs = 48; gflops = 2.1; switch = 0 };
        { P.cluster_name = "new-xeon"; procs = 96; gflops = 4.8; switch = 1 };
        { P.cluster_name = "fat-node"; procs = 16; gflops = 7.2; switch = 2 };
      ]
  in
  print_string (P.describe platform);
  Printf.printf "aggregate power: %.1f GFlop/s\n\n" (P.total_power platform);

  let ref_cluster = Reference_cluster.of_platform platform in
  Printf.printf
    "reference cluster: %d virtual processors at %.2f GFlop/s\n\n"
    ref_cluster.Reference_cluster.procs ref_cluster.Reference_cluster.speed;

  let rng = Mcs_prng.Prng.create ~seed:11 in
  let ptg = Mcs_ptg.Strassen.generate ~data:6.4e7 rng in
  Format.printf "application: %a@.@." Ptg.pp ptg;

  let table =
    Table.create
      ~title:"Strassen under increasing resource constraints (SCRAP-MAX)"
      ~header:
        [ "beta"; "allocated proc-equivalents"; "makespan (s)";
          "parallel efficiency" ]
  in
  List.iter
    (fun beta ->
      let alloc = Allocation.allocate ref_cluster platform ~beta ptg in
      let schedules =
        List_mapper.run platform ref_cluster [ (ptg, alloc.Allocation.procs) ]
      in
      let sched = List.hd schedules in
      let total_alloc =
        Array.fold_left ( + ) 0 alloc.Allocation.procs
      in
      Table.add_row table
        [
          Printf.sprintf "%.2f" beta;
          string_of_int total_alloc;
          Printf.sprintf "%.2f" sched.Schedule.makespan;
          Printf.sprintf "%.0f%%"
            (100. *. Schedule.parallel_efficiency ~platform sched);
        ])
    [ 0.05; 0.1; 0.2; 0.4; 0.7; 1.0 ];
  Table.print table;
  print_endline
    "Loose constraints shorten the makespan but burn processor time on\n\
     Amdahl-limited tasks; tight constraints keep efficiency high -- the\n\
     reason constrained allocations leave room for competitors.";
  print_newline ();

  (* Export the PTG for inspection with Graphviz. *)
  let path = Filename.concat (Filename.get_temp_dir_name ()) "strassen.dot" in
  let oc = open_out path in
  output_string oc (Ptg.to_dot ptg);
  close_out oc;
  Printf.printf "wrote %s (render with: dot -Tsvg %s)\n" path path
