examples/export_traces.mli:
