examples/quickstart.ml: Array Format List Mcs_platform Mcs_prng Mcs_ptg Mcs_sched Mcs_sim Printf
