examples/export_traces.ml: Filename List Mcs_platform Mcs_prng Mcs_ptg Mcs_sched Printf String
