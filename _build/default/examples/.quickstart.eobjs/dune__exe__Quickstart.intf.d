examples/quickstart.mli:
