examples/batch_workflows.mli:
