examples/custom_platform.ml: Array Filename Format List Mcs_platform Mcs_prng Mcs_ptg Mcs_sched Mcs_util Printf
