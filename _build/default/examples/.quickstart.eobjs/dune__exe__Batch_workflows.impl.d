examples/batch_workflows.ml: Array Float List Mcs_experiments Mcs_platform Mcs_prng Mcs_ptg Mcs_sched Mcs_util Printf
