examples/custom_platform.mli:
