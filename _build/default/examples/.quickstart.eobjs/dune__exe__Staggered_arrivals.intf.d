examples/staggered_arrivals.mli:
