(* Quickstart: schedule two random parallel task graphs concurrently on
   the Rennes multi-cluster, print the resource constraints, the
   schedules and the simulated makespans.

   Run with: dune exec examples/quickstart.exe *)

module Ptg = Mcs_ptg.Ptg
module Strategy = Mcs_sched.Strategy
module Pipeline = Mcs_sched.Pipeline
module Schedule = Mcs_sched.Schedule

let () =
  (* 1. A platform: one of the paper's Grid'5000 subsets. *)
  let platform = Mcs_platform.Grid5000.rennes () in
  print_string (Mcs_platform.Platform.describe platform);
  print_newline ();

  (* 2. Two applications: random layered PTGs (20 and 50 tasks). *)
  let rng = Mcs_prng.Prng.create ~seed:42 in
  let small =
    Mcs_ptg.Random_gen.generate ~id:0 rng
      { Mcs_ptg.Random_gen.default with tasks = 20 }
  in
  let large =
    Mcs_ptg.Random_gen.generate ~id:1 rng
      { Mcs_ptg.Random_gen.default with tasks = 50; width = 0.8 }
  in
  List.iter (fun p -> Format.printf "%a@." Ptg.pp p) [ small; large ];
  print_newline ();

  (* 3. Two-step scheduling under the paper's WPS-work strategy:
     constrained allocation (SCRAP-MAX) then concurrent ready-list
     mapping with packing. *)
  let strategy = Strategy.Weighted (Strategy.Work, 0.7) in
  let prepared = Pipeline.prepare ~strategy platform [ small; large ] in
  Array.iteri
    (fun i beta -> Printf.printf "beta(app %d) = %.3f\n" i beta)
    prepared.Pipeline.betas;
  let schedules =
    Pipeline.schedule_concurrent ~strategy platform [ small; large ]
  in

  (* 4. Inspect the result: validity, Gantt chart, simulated makespans. *)
  (match Schedule.validate ~platform schedules with
  | Ok () -> print_endline "schedules: valid"
  | Error v -> print_endline ("schedules: INVALID - " ^ v.Schedule.message));
  print_newline ();
  print_string (Schedule.gantt ~platform schedules);
  print_newline ();
  let sim = Mcs_sim.Replay.run platform schedules in
  List.iteri
    (fun i sched ->
      Printf.printf
        "app %d: estimated makespan %.2f s, simulated %.2f s\n" i
        sched.Schedule.makespan
        sim.Mcs_sim.Replay.makespans.(i))
    schedules
