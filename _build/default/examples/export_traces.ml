(* Trace export: schedule a small scenario, validate it, and write the
   result both as CSV (one row per placement, ready for pandas or a
   spreadsheet Gantt) and as JSON, plus the DOT of one application.

   Run with: dune exec examples/export_traces.exe *)

module Schedule = Mcs_sched.Schedule
module Strategy = Mcs_sched.Strategy

let write path contents =
  let oc = open_out path in
  output_string oc contents;
  close_out oc;
  Printf.printf "wrote %s (%d bytes)\n" path (String.length contents)

let () =
  let platform = Mcs_platform.Grid5000.lille () in
  let rng = Mcs_prng.Prng.create ~seed:99 in
  let ptgs =
    [
      Mcs_ptg.Random_gen.generate ~id:0 rng Mcs_ptg.Random_gen.default;
      Mcs_ptg.Fft.generate ~id:1 ~points:8 rng;
      Mcs_ptg.Strassen.generate ~id:2 rng;
    ]
  in
  let schedules =
    Mcs_sched.Pipeline.schedule_concurrent
      ~strategy:(Strategy.Weighted (Strategy.Width, 0.5))
      platform ptgs
  in
  (match Schedule.validate ~platform schedules with
  | Ok () -> print_endline "schedules: valid"
  | Error v -> failwith v.Schedule.message);
  let dir = Filename.get_temp_dir_name () in
  write (Filename.concat dir "mcs_schedule.csv")
    (Mcs_sched.Trace.to_csv schedules);
  write (Filename.concat dir "mcs_schedule.json")
    (Mcs_sched.Trace.to_json schedules);
  write (Filename.concat dir "mcs_fft.dot")
    (Mcs_ptg.Ptg.to_dot (List.nth ptgs 1));
  (* A taste of the CSV. *)
  let csv = Mcs_sched.Trace.to_csv schedules in
  let lines = String.split_on_char '\n' csv in
  print_newline ();
  List.iteri (fun i l -> if i < 6 then print_endline l) lines
