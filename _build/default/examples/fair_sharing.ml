(* Fair sharing: the paper's motivating scenario. Eight users submit
   applications of very different sizes to the same multi-cluster at the
   same time. Compare the selfish strategy (each application allocates
   as if it owned the platform) against equal share and the paper's
   WPS-width compromise: per-user slowdowns, unfairness, and global
   completion time.

   Run with: dune exec examples/fair_sharing.exe *)

module Ptg = Mcs_ptg.Ptg
module Strategy = Mcs_sched.Strategy
module Runner = Mcs_experiments.Runner
module Table = Mcs_util.Table

let () =
  let platform = Mcs_platform.Grid5000.sophia () in
  let rng = Mcs_prng.Prng.create ~seed:7 in
  (* A heterogeneous mix: small and large workflows, one FFT, one
     Strassen kernel. *)
  let ptgs =
    [
      Mcs_ptg.Random_gen.generate ~id:0 rng
        { Mcs_ptg.Random_gen.default with tasks = 10; width = 0.2 };
      Mcs_ptg.Random_gen.generate ~id:1 rng
        { Mcs_ptg.Random_gen.default with tasks = 50; width = 0.8 };
      Mcs_ptg.Random_gen.generate ~id:2 rng
        { Mcs_ptg.Random_gen.default with tasks = 20 };
      Mcs_ptg.Random_gen.generate ~id:3 rng
        { Mcs_ptg.Random_gen.default with tasks = 50; width = 0.5 };
      Mcs_ptg.Fft.generate ~id:4 ~points:16 rng;
      Mcs_ptg.Fft.generate ~id:5 ~points:4 rng;
      Mcs_ptg.Strassen.generate ~id:6 rng;
      Mcs_ptg.Random_gen.generate ~id:7 rng
        { Mcs_ptg.Random_gen.default with tasks = 10; width = 0.8 };
    ]
  in
  Printf.printf "%d users on %s:\n" (List.length ptgs)
    (Mcs_platform.Platform.name platform);
  List.iter (fun p -> Format.printf "  %a@." Ptg.pp p) ptgs;
  print_newline ();

  let strategies =
    [
      Strategy.Selfish;
      Strategy.Equal_share;
      Strategy.Weighted (Strategy.Width, 0.5);
      Strategy.Proportional Strategy.Work;
    ]
  in
  let results = Runner.evaluate platform ptgs strategies in

  let slowdown_table =
    Table.create ~title:"Per-application slowdown (1 = not perturbed)"
      ~header:
        ("application"
        :: List.map (fun r -> Strategy.name r.Runner.strategy) results)
  in
  List.iteri
    (fun i ptg ->
      Table.add_row slowdown_table
        (Printf.sprintf "%s#%d" ptg.Ptg.name ptg.Ptg.id
        :: List.map
             (fun r -> Printf.sprintf "%.3f" r.Runner.slowdowns.(i))
             results))
    ptgs;
  Table.print slowdown_table;

  let summary =
    Table.create ~title:"Summary"
      ~header:[ "strategy"; "unfairness"; "global makespan (s)" ]
  in
  List.iter
    (fun r ->
      Table.add_row summary
        [
          Strategy.name r.Runner.strategy;
          Printf.sprintf "%.3f" r.Runner.unfairness;
          Printf.sprintf "%.1f" r.Runner.global_makespan;
        ])
    results;
  Table.print summary;
  print_endline
    "Note how the selfish strategy lets large applications crush small\n\
     ones (dispersed slowdowns), while WPS-width keeps slowdowns\n\
     similar without giving up much completion time."
