open Mcs_platform

let check_float = Alcotest.(check (float 1e-6))

(* Section 2's derived figures are strong end-to-end checks of Table 1. *)
let test_paper_totals () =
  let expected =
    [ ("Lille", 99, 20.2); ("Nancy", 167, 6.1); ("Rennes", 229, 36.8);
      ("Sophia", 180, 34.7) ]
  in
  List.iter2
    (fun platform (name, procs, het) ->
      Alcotest.(check string) "site name" name (Platform.name platform);
      Alcotest.(check int) "site procs" procs (Platform.total_procs platform);
      Alcotest.(check (float 0.05))
        (name ^ " heterogeneity %")
        het
        (100. *. Platform.heterogeneity platform))
    (Grid5000.all ()) expected

let test_switch_layout () =
  (* Lille and Rennes share one switch; Nancy and Sophia do not. *)
  Alcotest.(check int) "lille" 1 (Platform.switch_count (Grid5000.lille ()));
  Alcotest.(check int) "rennes" 1 (Platform.switch_count (Grid5000.rennes ()));
  Alcotest.(check int) "nancy" 2 (Platform.switch_count (Grid5000.nancy ()));
  Alcotest.(check int) "sophia" 3 (Platform.switch_count (Grid5000.sophia ()));
  let nancy = Grid5000.nancy () in
  Alcotest.(check bool) "different switches" false
    (Platform.same_switch nancy 0 1);
  let lille = Grid5000.lille () in
  Alcotest.(check bool) "same switch" true (Platform.same_switch lille 0 2)

let test_total_power () =
  let lille = Grid5000.lille () in
  let manual = (53. *. 3.647) +. (20. *. 4.311) +. (26. *. 4.384) in
  check_float "aggregate power" manual (Platform.total_power lille);
  check_float "cluster power" (53. *. 3.647) (Platform.cluster_power lille 0)

let test_speeds () =
  let rennes = Grid5000.rennes () in
  check_float "min" 3.364 (Platform.min_speed rennes);
  check_float "max" 4.603 (Platform.max_speed rennes)

let test_proc_numbering () =
  let lille = Grid5000.lille () in
  Alcotest.(check int) "first of cluster 0" 0 (Platform.first_proc lille 0);
  Alcotest.(check int) "first of cluster 1" 53 (Platform.first_proc lille 1);
  Alcotest.(check int) "first of cluster 2" 73 (Platform.first_proc lille 2);
  Alcotest.(check int) "proc 0" 0 (Platform.cluster_of_proc lille 0);
  Alcotest.(check int) "proc 52" 0 (Platform.cluster_of_proc lille 52);
  Alcotest.(check int) "proc 53" 1 (Platform.cluster_of_proc lille 53);
  Alcotest.(check int) "proc 98" 2 (Platform.cluster_of_proc lille 98);
  check_float "speed of proc 53" 4.311 (Platform.proc_speed lille 53);
  Alcotest.(check bool) "out of range" true
    (try
       ignore (Platform.cluster_of_proc lille 99);
       false
     with Invalid_argument _ -> true)

let test_by_name () =
  (match Grid5000.by_name "RENNES" with
  | Some p -> Alcotest.(check string) "case-insensitive" "Rennes" (Platform.name p)
  | None -> Alcotest.fail "rennes not found");
  Alcotest.(check bool) "unknown site" true (Grid5000.by_name "mars" = None)

let test_make_validation () =
  let c name procs gflops switch =
    { Platform.cluster_name = name; procs; gflops; switch }
  in
  let raises f =
    try
      ignore (f ());
      false
    with Invalid_argument _ -> true
  in
  Alcotest.(check bool) "empty" true
    (raises (fun () -> Platform.make ~name:"x" []));
  Alcotest.(check bool) "zero procs" true
    (raises (fun () -> Platform.make ~name:"x" [ c "a" 0 1. 0 ]));
  Alcotest.(check bool) "negative speed" true
    (raises (fun () -> Platform.make ~name:"x" [ c "a" 4 (-1.) 0 ]));
  Alcotest.(check bool) "negative switch" true
    (raises (fun () -> Platform.make ~name:"x" [ c "a" 4 1. (-1) ]));
  Alcotest.(check bool) "zero bandwidth" true
    (raises (fun () ->
         Platform.make ~name:"x" ~link_bandwidth:0. [ c "a" 4 1. 0 ]))

let test_describe () =
  let s = Platform.describe (Grid5000.sophia ()) in
  let contains sub =
    let n = String.length sub in
    let rec loop i =
      i + n <= String.length s && (String.sub s i n = sub || loop (i + 1))
    in
    loop 0
  in
  Alcotest.(check bool) "mentions clusters" true
    (contains "Azur" && contains "Helios" && contains "Sol")

let qcheck_cluster_of_proc_consistent =
  QCheck.Test.make ~name:"cluster_of_proc inverts first_proc ranges"
    ~count:100
    QCheck.(int_range 0 228)
    (fun p ->
      let rennes = Grid5000.rennes () in
      let k = Platform.cluster_of_proc rennes p in
      let first = Platform.first_proc rennes k in
      let size = (Platform.cluster rennes k).Platform.procs in
      p >= first && p < first + size)

let suite =
  [
    ( "platform",
      [
        Alcotest.test_case "paper totals & heterogeneity" `Quick
          test_paper_totals;
        Alcotest.test_case "switch layout" `Quick test_switch_layout;
        Alcotest.test_case "total power" `Quick test_total_power;
        Alcotest.test_case "speeds" `Quick test_speeds;
        Alcotest.test_case "processor numbering" `Quick test_proc_numbering;
        Alcotest.test_case "by_name" `Quick test_by_name;
        Alcotest.test_case "validation" `Quick test_make_validation;
        Alcotest.test_case "describe" `Quick test_describe;
        QCheck_alcotest.to_alcotest qcheck_cluster_of_proc_consistent;
      ] );
  ]
