open Mcs_prng

let test_determinism () =
  let a = Prng.create ~seed:123 and b = Prng.create ~seed:123 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Prng.bits64 a) (Prng.bits64 b)
  done

let test_seed_sensitivity () =
  let a = Prng.create ~seed:1 and b = Prng.create ~seed:2 in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Prng.bits64 a = Prng.bits64 b then incr same
  done;
  Alcotest.(check bool) "streams differ" true (!same < 4)

let test_copy () =
  let a = Prng.create ~seed:9 in
  ignore (Prng.bits64 a);
  let b = Prng.copy a in
  for _ = 1 to 50 do
    Alcotest.(check int64) "copy tracks" (Prng.bits64 a) (Prng.bits64 b)
  done

let test_split_independence () =
  let parent = Prng.create ~seed:5 in
  let child = Prng.split parent in
  (* The child must not replay the parent's stream. *)
  let collisions = ref 0 in
  for _ = 1 to 64 do
    if Prng.bits64 parent = Prng.bits64 child then incr collisions
  done;
  Alcotest.(check bool) "no lockstep" true (!collisions < 4)

let test_int_bounds () =
  let rng = Prng.create ~seed:11 in
  for _ = 1 to 10_000 do
    let v = Prng.int rng 7 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 7)
  done;
  Alcotest.check_raises "zero bound"
    (Invalid_argument "Prng.int: bound must be positive") (fun () ->
      ignore (Prng.int rng 0))

let test_int_covers_all_values () =
  let rng = Prng.create ~seed:12 in
  let seen = Array.make 5 false in
  for _ = 1 to 1000 do
    seen.(Prng.int rng 5) <- true
  done;
  Alcotest.(check bool) "all values reached" true (Array.for_all Fun.id seen)

let test_int_in () =
  let rng = Prng.create ~seed:13 in
  for _ = 1 to 1000 do
    let v = Prng.int_in rng ~lo:(-3) ~hi:3 in
    Alcotest.(check bool) "in closed range" true (v >= -3 && v <= 3)
  done;
  Alcotest.(check int) "degenerate" 4 (Prng.int_in rng ~lo:4 ~hi:4);
  Alcotest.check_raises "inverted" (Invalid_argument "Prng.int_in: hi < lo")
    (fun () -> ignore (Prng.int_in rng ~lo:1 ~hi:0))

let test_float_bounds () =
  let rng = Prng.create ~seed:14 in
  for _ = 1 to 10_000 do
    let v = Prng.float rng 2.5 in
    Alcotest.(check bool) "in [0, 2.5)" true (v >= 0. && v < 2.5)
  done

let test_uniform_mean () =
  let rng = Prng.create ~seed:15 in
  let n = 50_000 in
  let acc = ref 0. in
  for _ = 1 to n do
    acc := !acc +. Prng.uniform rng ~lo:10. ~hi:20.
  done;
  let mean = !acc /. float_of_int n in
  Alcotest.(check bool) "mean near 15" true (abs_float (mean -. 15.) < 0.1)

let test_bernoulli () =
  let rng = Prng.create ~seed:16 in
  Alcotest.(check bool) "p=0" false (Prng.bernoulli rng ~p:0.);
  Alcotest.(check bool) "p=1" true (Prng.bernoulli rng ~p:1.);
  let hits = ref 0 in
  let n = 20_000 in
  for _ = 1 to n do
    if Prng.bernoulli rng ~p:0.3 then incr hits
  done;
  let freq = float_of_int !hits /. float_of_int n in
  Alcotest.(check bool) "freq near 0.3" true (abs_float (freq -. 0.3) < 0.02)

let test_exponential () =
  let rng = Prng.create ~seed:17 in
  let n = 50_000 in
  let acc = ref 0. in
  for _ = 1 to n do
    let v = Prng.exponential rng ~mean:4. in
    Alcotest.(check bool) "non-negative" true (v >= 0.);
    acc := !acc +. v
  done;
  let mean = !acc /. float_of_int n in
  Alcotest.(check bool) "mean near 4" true (abs_float (mean -. 4.) < 0.15)

let test_choose_shuffle () =
  let rng = Prng.create ~seed:18 in
  let arr = [| 1; 2; 3; 4; 5 |] in
  for _ = 1 to 100 do
    Alcotest.(check bool) "chosen from array" true
      (Array.mem (Prng.choose rng arr) arr)
  done;
  let a = Array.init 20 Fun.id in
  Prng.shuffle rng a;
  Alcotest.(check (list int)) "permutation" (List.init 20 Fun.id)
    (List.sort compare (Array.to_list a))

let test_pick_distinct () =
  let rng = Prng.create ~seed:19 in
  for _ = 1 to 200 do
    let picks = Prng.pick_distinct rng 10 ~count:4 in
    Alcotest.(check int) "count" 4 (List.length picks);
    Alcotest.(check bool) "distinct & sorted & in range" true
      (List.sort_uniq compare picks = picks
      && List.for_all (fun x -> x >= 0 && x < 10) picks)
  done;
  Alcotest.(check (list int)) "all of them" [ 0; 1; 2 ]
    (Prng.pick_distinct rng 3 ~count:3);
  Alcotest.(check (list int)) "none" [] (Prng.pick_distinct rng 3 ~count:0)

let qcheck_int_uniformish =
  QCheck.Test.make ~name:"Prng.int frequencies are roughly uniform" ~count:5
    QCheck.(int_range 2 20)
    (fun bound ->
      let rng = Prng.create ~seed:(bound * 7 + 1) in
      let n = 20_000 in
      let counts = Array.make bound 0 in
      for _ = 1 to n do
        let v = Prng.int rng bound in
        counts.(v) <- counts.(v) + 1
      done;
      let expected = float_of_int n /. float_of_int bound in
      Array.for_all
        (fun c -> abs_float (float_of_int c -. expected) < 6. *. sqrt expected)
        counts)

let suite =
  [
    ( "prng",
      [
        Alcotest.test_case "determinism" `Quick test_determinism;
        Alcotest.test_case "seed sensitivity" `Quick test_seed_sensitivity;
        Alcotest.test_case "copy" `Quick test_copy;
        Alcotest.test_case "split independence" `Quick test_split_independence;
        Alcotest.test_case "int bounds" `Quick test_int_bounds;
        Alcotest.test_case "int coverage" `Quick test_int_covers_all_values;
        Alcotest.test_case "int_in" `Quick test_int_in;
        Alcotest.test_case "float bounds" `Quick test_float_bounds;
        Alcotest.test_case "uniform mean" `Quick test_uniform_mean;
        Alcotest.test_case "bernoulli" `Quick test_bernoulli;
        Alcotest.test_case "exponential" `Quick test_exponential;
        Alcotest.test_case "choose/shuffle" `Quick test_choose_shuffle;
        Alcotest.test_case "pick_distinct" `Quick test_pick_distinct;
        QCheck_alcotest.to_alcotest qcheck_int_uniformish;
      ] );
  ]
