(* Staggered submission times: the release-date extension of the mapper,
   the replay and the runner (the paper's Section 8 future work). *)

module Platform = Mcs_platform.Platform
module Grid5000 = Mcs_platform.Grid5000
module Prng = Mcs_prng.Prng
open Mcs_sched

let check_float = Alcotest.(check (float 1e-6))

let random_ptgs n seed =
  let rng = Prng.create ~seed in
  List.init n (fun id ->
      Mcs_ptg.Random_gen.generate ~id rng Mcs_ptg.Random_gen.default)

let first_start sched =
  Array.fold_left
    (fun acc pl ->
      if Array.length pl.Schedule.procs > 0 then
        Float.min acc pl.Schedule.start
      else acc)
    Float.infinity sched.Schedule.placements

let test_mapper_respects_release () =
  let platform = Grid5000.lille () in
  let ptgs = random_ptgs 3 4 in
  let release = [| 0.; 50.; 120. |] in
  let schedules =
    Pipeline.schedule_concurrent ~release ~strategy:Strategy.Equal_share
      platform ptgs
  in
  List.iteri
    (fun i sched ->
      Alcotest.(check bool)
        (Printf.sprintf "app %d starts after release" i)
        true
        (first_start sched >= release.(i) -. 1e-9);
      (* The virtual entry too. *)
      Alcotest.(check bool) "entry node floored" true
        ((Schedule.placement sched (Mcs_ptg.Ptg.entry sched.Schedule.ptg))
           .Schedule.start
        >= release.(i) -. 1e-9))
    schedules;
  match Schedule.validate ~platform schedules with
  | Ok () -> ()
  | Error v -> Alcotest.fail v.Schedule.message

let test_mapper_release_validation () =
  let platform = Grid5000.lille () in
  let ptgs = random_ptgs 2 5 in
  let raises release =
    try
      ignore
        (Pipeline.schedule_concurrent ~release ~strategy:Strategy.Selfish
           platform ptgs);
      false
    with Invalid_argument _ -> true
  in
  Alcotest.(check bool) "wrong length" true (raises [| 0. |]);
  Alcotest.(check bool) "negative" true (raises [| 0.; -1. |])

let test_replay_respects_release () =
  let platform = Grid5000.rennes () in
  let ptgs = random_ptgs 3 6 in
  let release = [| 0.; 75.; 200. |] in
  let schedules =
    Pipeline.schedule_concurrent ~release ~strategy:Strategy.Equal_share
      platform ptgs
  in
  let sim = Mcs_sim.Replay.run ~release platform schedules in
  Array.iteri
    (fun i times ->
      Array.iter
        (fun t ->
          if not (Float.is_nan t) then
            Alcotest.(check bool)
              (Printf.sprintf "app %d sim start after release" i)
              true
              (t >= release.(i) -. 1e-9))
        times)
    sim.Mcs_sim.Replay.start_times

let test_zero_release_matches_default () =
  let platform = Grid5000.nancy () in
  let ptgs = random_ptgs 2 7 in
  let with_zero =
    Pipeline.schedule_concurrent ~release:[| 0.; 0. |]
      ~strategy:Strategy.Equal_share platform ptgs
  in
  let without =
    Pipeline.schedule_concurrent ~strategy:Strategy.Equal_share platform ptgs
  in
  List.iter2
    (fun a b -> check_float "same makespans" a.Schedule.makespan b.Schedule.makespan)
    with_zero without

let test_runner_response_time () =
  let platform = Grid5000.lille () in
  let ptgs = random_ptgs 2 8 in
  let release = [| 0.; 1000. |] in
  (* With a huge gap, the second application runs essentially alone:
     slowdown near 1. *)
  match
    Mcs_experiments.Runner.evaluate ~release platform ptgs
      [ Strategy.Selfish ]
  with
  | [ r ] ->
    Alcotest.(check bool) "late app unperturbed" true
      (r.Mcs_experiments.Runner.slowdowns.(1) > 0.9)
  | _ -> Alcotest.fail "one result expected"

let test_late_release_serialises () =
  (* One-processor platform, two single-task apps; the second released
     after the first finishes. *)
  let platform =
    Platform.make ~name:"uni"
      [ { Platform.cluster_name = "c"; procs = 1; gflops = 1.; switch = 0 } ]
  in
  let mk id =
    Mcs_ptg.Builder.build ~id ~name:"solo"
      ~tasks:
        [|
          Mcs_taskmodel.Task.make ~data:(10. *. 1e9)
            ~complexity:(Stencil 1.) ~alpha:1.;
        |]
      ~edges:[]
  in
  let schedules =
    Pipeline.schedule_concurrent ~release:[| 0.; 25. |]
      ~strategy:Strategy.Selfish platform [ mk 0; mk 1 ]
  in
  check_float "first at 0" 0. (first_start (List.nth schedules 0));
  check_float "second at its release" 25. (first_start (List.nth schedules 1));
  check_float "second done at 35" 35. (List.nth schedules 1).Schedule.makespan

let suite =
  [
    ( "sched.release",
      [
        Alcotest.test_case "mapper floors starts" `Quick
          test_mapper_respects_release;
        Alcotest.test_case "validation" `Quick test_mapper_release_validation;
        Alcotest.test_case "replay floors starts" `Quick
          test_replay_respects_release;
        Alcotest.test_case "zero release is default" `Quick
          test_zero_release_matches_default;
        Alcotest.test_case "runner response time" `Quick
          test_runner_response_time;
        Alcotest.test_case "serialised by release" `Quick
          test_late_release_serialises;
      ] );
  ]
