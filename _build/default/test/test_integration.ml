(* End-to-end regression pin: a fixed scenario whose metrics must stay
   bit-stable run to run. If an intentional algorithm change shifts these
   values, re-derive them and update — the test exists to make such
   shifts visible, not to forbid them. *)

module Strategy = Mcs_sched.Strategy
module Runner = Mcs_experiments.Runner
module Workload = Mcs_experiments.Workload

let golden_scenario () =
  let platform = Mcs_platform.Grid5000.rennes () in
  let rng = Mcs_prng.Prng.create ~seed:20090525 in
  let ptgs = Workload.draw rng Workload.Random_mixed_scenarios ~count:4 in
  (platform, ptgs)

let test_golden_metrics () =
  let platform, ptgs = golden_scenario () in
  let results =
    Runner.evaluate platform ptgs
      [ Strategy.Selfish; Strategy.Equal_share;
        Strategy.Weighted (Strategy.Width, 0.5) ]
  in
  let expected =
    [
      ("S", 1.212906003, 130.727380174, 110.452759751);
      ("ES", 0.472259310, 121.325628416, 77.307052503);
      ("WPS-width(0.5)", 0.394803788, 120.820474511, 75.745765328);
    ]
  in
  List.iter2
    (fun r (name, unfairness, global, avg) ->
      Alcotest.(check string) "strategy" name (Strategy.name r.Runner.strategy);
      Alcotest.(check (float 1e-6)) (name ^ " unfairness") unfairness
        r.Runner.unfairness;
      Alcotest.(check (float 1e-4)) (name ^ " global") global
        r.Runner.global_makespan;
      Alcotest.(check (float 1e-4)) (name ^ " avg") avg r.Runner.avg_makespan)
    results expected

let test_golden_expected_ordering () =
  (* The paper-shaped relations on this scenario, robust to small
     algorithm changes (unlike the exact pins above). *)
  let platform, ptgs = golden_scenario () in
  let results =
    Runner.evaluate platform ptgs
      [ Strategy.Selfish; Strategy.Equal_share;
        Strategy.Weighted (Strategy.Width, 0.5) ]
  in
  match results with
  | [ s; es; wps ] ->
    Alcotest.(check bool) "ES fairer than S" true
      (es.Runner.unfairness < s.Runner.unfairness);
    Alcotest.(check bool) "WPS-width fairest" true
      (wps.Runner.unfairness < es.Runner.unfairness)
  | _ -> Alcotest.fail "three results expected"

let test_full_pipeline_all_families_valid () =
  List.iter
    (fun family ->
      List.iter
        (fun platform ->
          let rng = Mcs_prng.Prng.create ~seed:314 in
          let ptgs = Workload.draw rng family ~count:3 in
          let schedules =
            Mcs_sched.Pipeline.schedule_concurrent
              ~strategy:(Strategy.Weighted (Strategy.Work, 0.7))
              platform ptgs
          in
          (match Mcs_sched.Schedule.validate ~platform schedules with
          | Ok () -> ()
          | Error v -> Alcotest.fail v.Mcs_sched.Schedule.message);
          let sim = Mcs_sim.Replay.run platform schedules in
          Array.iter
            (fun m ->
              Alcotest.(check bool) "positive makespan" true (m > 0.))
            sim.Mcs_sim.Replay.makespans)
        (Mcs_platform.Grid5000.all ()))
    [ Workload.Random_mixed_scenarios; Workload.Fft_ptgs;
      Workload.Strassen_ptgs ]

let suite =
  [
    ( "integration",
      [
        Alcotest.test_case "golden metrics" `Quick test_golden_metrics;
        Alcotest.test_case "golden ordering" `Quick
          test_golden_expected_ordering;
        Alcotest.test_case "all families, all platforms" `Quick
          test_full_pipeline_all_families_valid;
      ] );
  ]
