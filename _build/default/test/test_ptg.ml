open Mcs_ptg
module Dag = Mcs_dag.Dag
module Task = Mcs_taskmodel.Task
module Prng = Mcs_prng.Prng

let real_task seconds =
  Task.make ~data:(seconds *. 1e9) ~complexity:(Stencil 1.) ~alpha:0.5

let test_builder_single_chain () =
  (* Already single entry/exit: no virtual node added. *)
  let tasks = [| real_task 1.; real_task 2. |] in
  let ptg = Builder.build ~id:0 ~name:"chain" ~tasks ~edges:[ (0, 1, 42.) ] in
  Alcotest.(check int) "nodes" 2 (Ptg.node_count ptg);
  Alcotest.(check int) "tasks" 2 (Ptg.task_count ptg);
  Alcotest.(check int) "entry" 0 (Ptg.entry ptg);
  Alcotest.(check int) "exit" 1 (Ptg.exit ptg);
  Alcotest.(check (float 0.)) "edge bytes" 42.
    (Ptg.edge_bytes_between ptg ~src:0 ~dst:1)

let test_builder_adds_virtuals () =
  (* Two parallel tasks: needs both a virtual entry and a virtual exit. *)
  let tasks = [| real_task 1.; real_task 1. |] in
  let ptg = Builder.build ~id:1 ~name:"par" ~tasks ~edges:[] in
  Alcotest.(check int) "nodes" 4 (Ptg.node_count ptg);
  Alcotest.(check int) "real tasks" 2 (Ptg.task_count ptg);
  Alcotest.(check bool) "entry virtual" true (Ptg.is_virtual ptg (Ptg.entry ptg));
  Alcotest.(check bool) "exit virtual" true (Ptg.is_virtual ptg (Ptg.exit ptg));
  Alcotest.(check bool) "real not virtual" false (Ptg.is_virtual ptg 0)

let test_builder_merges_duplicates () =
  let tasks = [| real_task 1.; real_task 1. |] in
  let ptg =
    Builder.build ~id:2 ~name:"dup" ~tasks ~edges:[ (0, 1, 10.); (0, 1, 30.) ]
  in
  Alcotest.(check (float 0.)) "max volume kept" 30.
    (Ptg.edge_bytes_between ptg ~src:0 ~dst:1)

let test_builder_rejects_empty () =
  Alcotest.(check bool) "no tasks" true
    (try
       ignore (Builder.build ~id:0 ~name:"x" ~tasks:[||] ~edges:[]);
       false
     with Invalid_argument _ -> true)

let test_work_and_width () =
  let tasks = [| real_task 1.; real_task 2.; real_task 3. |] in
  (* 0 -> {1, 2}: width 2 at level 1 (virtual exit not counted). *)
  let ptg =
    Builder.build ~id:3 ~name:"fork" ~tasks ~edges:[ (0, 1, 0.); (0, 2, 0.) ]
  in
  Alcotest.(check int) "width" 2 (Ptg.max_width ptg);
  Alcotest.(check (float 1.)) "work" 6e9 (Ptg.work ptg)

let test_critical_path_seq () =
  let tasks = [| real_task 1.; real_task 5.; real_task 2.; real_task 1. |] in
  (* 0 -> 1 -> 3 and 0 -> 2 -> 3; cp = 1 + 5 + 1 = 7 s at 1 GFlop/s. *)
  let ptg =
    Builder.build ~id:4 ~name:"diamond" ~tasks
      ~edges:[ (0, 1, 0.); (0, 2, 0.); (1, 3, 0.); (2, 3, 0.) ]
  in
  Alcotest.(check (float 1e-6)) "cp" 7. (Ptg.critical_path_seq ptg ~gflops:1.);
  Alcotest.(check (float 1e-6)) "cp scales" 3.5
    (Ptg.critical_path_seq ptg ~gflops:2.)

let test_create_validation () =
  let dag = Dag.of_edges ~n:2 [ (0, 1) ] in
  let raises f =
    try
      ignore (f ());
      false
    with Invalid_argument _ -> true
  in
  Alcotest.(check bool) "task length" true
    (raises (fun () ->
         Ptg.create ~id:0 ~name:"bad" ~dag ~tasks:[| Task.zero |]
           ~edge_bytes:[| 0. |]));
  Alcotest.(check bool) "edge length" true
    (raises (fun () ->
         Ptg.create ~id:0 ~name:"bad" ~dag
           ~tasks:[| Task.zero; Task.zero |]
           ~edge_bytes:[||]));
  Alcotest.(check bool) "negative bytes" true
    (raises (fun () ->
         Ptg.create ~id:0 ~name:"bad" ~dag
           ~tasks:[| Task.zero; Task.zero |]
           ~edge_bytes:[| -1. |]));
  let two_sources = Dag.of_edges ~n:3 [ (0, 2); (1, 2) ] in
  Alcotest.(check bool) "multi source rejected" true
    (raises (fun () ->
         Ptg.create ~id:0 ~name:"bad" ~dag:two_sources
           ~tasks:[| Task.zero; Task.zero; Task.zero |]
           ~edge_bytes:[| 0.; 0. |]))

(* ---------- Random generator ---------- *)

let gen_params =
  QCheck.Gen.(
    let* tasks = int_range 5 60 in
    let* width = oneofl [ 0.2; 0.5; 0.8 ] in
    let* regularity = oneofl [ 0.2; 0.8 ] in
    let* density = oneofl [ 0.2; 0.8 ] in
    let* jump = oneofl [ 1; 2; 4 ] in
    let* seed = int_range 0 100_000 in
    return (tasks, width, regularity, density, jump, seed))

let make_random (tasks, width, regularity, density, jump, seed) =
  let rng = Prng.create ~seed in
  Random_gen.generate rng
    { Random_gen.tasks; width; regularity; density; jump;
      class_ = Task.Class_mixed }

let qcheck_random_task_count =
  QCheck.Test.make ~name:"random generator: exact real-task count" ~count:150
    (QCheck.make gen_params) (fun params ->
      let (tasks, _, _, _, _, _) = params in
      Ptg.task_count (make_random params) = tasks)

let qcheck_random_single_entry_exit =
  QCheck.Test.make ~name:"random generator: single entry and exit" ~count:150
    (QCheck.make gen_params) (fun params ->
      let ptg = make_random params in
      let dag = ptg.Ptg.dag in
      List.length (Dag.sources dag) = 1 && List.length (Dag.sinks dag) = 1)

let qcheck_random_parents =
  QCheck.Test.make
    ~name:"random generator: every real task below level 1 has a real parent"
    ~count:100 (QCheck.make gen_params) (fun params ->
      let ptg = make_random params in
      let dag = ptg.Ptg.dag in
      let ok = ref true in
      for v = 0 to Dag.node_count dag - 1 do
        if (not (Ptg.is_virtual ptg v)) && Dag.in_degree dag v = 0 then
          (* only possible if this is the unique source *)
          ok := !ok && Dag.sources dag = [ v ]
      done;
      !ok)

let test_width_parameter_effect () =
  (* Averaged over seeds, wide graphs must be wider than chain-like. *)
  let avg_width width =
    let acc = ref 0 in
    for seed = 0 to 19 do
      let rng = Prng.create ~seed in
      let ptg =
        Random_gen.generate rng
          { Random_gen.default with tasks = 50; width }
      in
      acc := !acc + Ptg.max_width ptg
    done;
    float_of_int !acc /. 20.
  in
  let narrow = avg_width 0.2 and wide = avg_width 0.8 in
  Alcotest.(check bool)
    (Printf.sprintf "width 0.8 (%.1f) > width 0.2 (%.1f)" wide narrow)
    true (wide > narrow +. 2.)

let test_jump_edges_skip_levels () =
  (* With jump = 4 some edge must span more than one precedence level
     for at least one seed. *)
  let found = ref false in
  for seed = 0 to 9 do
    let rng = Prng.create ~seed in
    let ptg =
      Random_gen.generate rng
        { Random_gen.default with tasks = 50; jump = 4; density = 0.8 }
    in
    let dag = ptg.Ptg.dag in
    let levels = Dag.depth_levels dag in
    for e = 0 to Dag.edge_count dag - 1 do
      let s, d = Dag.edge dag e in
      if levels.(d) - levels.(s) >= 4 then found := true
    done
  done;
  Alcotest.(check bool) "found a long edge" true !found

let test_random_validate_params () =
  let raises p =
    try
      Random_gen.validate p;
      false
    with Invalid_argument _ -> true
  in
  Alcotest.(check bool) "tasks" true
    (raises { Random_gen.default with tasks = 0 });
  Alcotest.(check bool) "width" true
    (raises { Random_gen.default with width = 0. });
  Alcotest.(check bool) "density" true
    (raises { Random_gen.default with density = 1.5 });
  Alcotest.(check bool) "jump" true
    (raises { Random_gen.default with jump = 0 })

let test_paper_grid_size () =
  Alcotest.(check int) "108 combinations" 108
    (List.length (Random_gen.paper_grid Task.Class_mixed))

(* ---------- Strassen ---------- *)

let test_strassen_shape () =
  let rng = Prng.create ~seed:1 in
  let ptg = Strassen.generate rng in
  Alcotest.(check int) "25 tasks" 25 (Ptg.task_count ptg);
  Alcotest.(check int) "27 nodes with virtuals" 27 (Ptg.node_count ptg);
  let dag = ptg.Ptg.dag in
  Alcotest.(check int) "single source" 1 (List.length (Dag.sources dag));
  Alcotest.(check int) "single sink" 1 (List.length (Dag.sinks dag))

let test_strassen_fixed_width () =
  (* All Strassen PTGs share the same shape: width is an invariant. *)
  let widths =
    List.init 10 (fun seed ->
        let rng = Prng.create ~seed in
        Ptg.max_width (Strassen.generate rng))
  in
  Alcotest.(check bool) "constant width" true
    (List.for_all (fun w -> w = List.hd widths) widths);
  Alcotest.(check int) "width is the 10 S-tasks" 10 (List.hd widths)

let test_strassen_mult_heavier_than_add () =
  let rng = Prng.create ~seed:2 in
  let ptg = Strassen.generate ~data:16e6 rng in
  (* Node 10 is P1 (a multiplication), node 0 is S1 (an addition). *)
  Alcotest.(check bool) "matmul dominates" true
    (Task.flops ptg.Ptg.tasks.(10) > 100. *. Task.flops ptg.Ptg.tasks.(0))

let test_strassen_explicit_data () =
  let rng = Prng.create ~seed:3 in
  let ptg = Strassen.generate ~data:5e6 rng in
  Alcotest.(check (float 0.)) "block size" 5e6 ptg.Ptg.tasks.(0).Task.data;
  Alcotest.(check bool) "rejects non-positive" true
    (try
       ignore (Strassen.generate ~data:0. (Prng.create ~seed:0));
       false
     with Invalid_argument _ -> true)

(* ---------- FFT ---------- *)

let test_fft_task_counts () =
  Alcotest.(check int) "4 points" 15 (Fft.task_count ~points:4);
  Alcotest.(check int) "8 points" 39 (Fft.task_count ~points:8);
  Alcotest.(check int) "16 points" 95 (Fft.task_count ~points:16);
  List.iter
    (fun points ->
      let rng = Prng.create ~seed:points in
      let ptg = Fft.generate ~points rng in
      Alcotest.(check int)
        (Printf.sprintf "generated %d-point count" points)
        (Fft.task_count ~points) (Ptg.task_count ptg))
    Fft.paper_sizes

let test_fft_structure () =
  let rng = Prng.create ~seed:5 in
  let ptg = Fft.generate ~points:8 rng in
  let dag = ptg.Ptg.dag in
  Alcotest.(check int) "single source" 1 (List.length (Dag.sources dag));
  Alcotest.(check int) "single sink" 1 (List.length (Dag.sinks dag));
  (* Tree root (node 0) is the entry and is a real task. *)
  Alcotest.(check int) "entry is the tree root" 0 (Ptg.entry ptg);
  Alcotest.(check bool) "root is real" false (Ptg.is_virtual ptg 0);
  (* Butterfly levels all have [points] tasks. *)
  Alcotest.(check int) "max width" 8 (Ptg.max_width ptg)

let test_fft_per_level_costs_identical () =
  let rng = Prng.create ~seed:6 in
  let ptg = Fft.generate ~points:4 rng in
  let dag = ptg.Ptg.dag in
  let levels = Dag.depth_levels dag in
  (* Group real tasks by level: within one level all flops are equal. *)
  let by_level = Hashtbl.create 16 in
  for v = 0 to Dag.node_count dag - 1 do
    if not (Ptg.is_virtual ptg v) then begin
      let f = Task.flops ptg.Ptg.tasks.(v) in
      let existing =
        Option.value (Hashtbl.find_opt by_level levels.(v)) ~default:[]
      in
      Hashtbl.replace by_level levels.(v) (f :: existing)
    end
  done;
  Hashtbl.iter
    (fun _ flops ->
      List.iter
        (fun f ->
          Alcotest.(check (float 1e-6)) "same cost within level"
            (List.hd flops) f)
        flops)
    by_level

let test_fft_rejects_bad_points () =
  List.iter
    (fun points ->
      Alcotest.(check bool)
        (Printf.sprintf "points=%d rejected" points)
        true
        (try
           ignore (Fft.task_count ~points);
           false
         with Invalid_argument _ -> true))
    [ 0; 1; 3; 6; 12 ]

let qcheck_fft_acyclic_connected =
  QCheck.Test.make ~name:"FFT graphs: every node on a path entry->exit"
    ~count:20
    QCheck.(oneofl [ 4; 8; 16 ])
    (fun points ->
      let rng = Prng.create ~seed:points in
      let ptg = Fft.generate ~points rng in
      let dag = ptg.Ptg.dag in
      let from_entry = Dag.reachable_from dag (Ptg.entry ptg) in
      Array.for_all Fun.id from_entry
      &&
      let exit = Ptg.exit ptg in
      let ok = ref true in
      for v = 0 to Dag.node_count dag - 1 do
        if not (Dag.has_path dag ~src:v ~dst:exit) then ok := false
      done;
      !ok)

let test_to_dot_ptg () =
  let rng = Prng.create ~seed:7 in
  let ptg = Strassen.generate rng in
  let dot = Ptg.to_dot ptg in
  Alcotest.(check bool) "dot contains label" true
    (String.length dot > 100)

let suite =
  [
    ( "ptg.builder",
      [
        Alcotest.test_case "single chain" `Quick test_builder_single_chain;
        Alcotest.test_case "virtual entry/exit" `Quick
          test_builder_adds_virtuals;
        Alcotest.test_case "duplicate merge" `Quick
          test_builder_merges_duplicates;
        Alcotest.test_case "rejects empty" `Quick test_builder_rejects_empty;
      ] );
    ( "ptg.core",
      [
        Alcotest.test_case "work & width" `Quick test_work_and_width;
        Alcotest.test_case "sequential critical path" `Quick
          test_critical_path_seq;
        Alcotest.test_case "create validation" `Quick test_create_validation;
        Alcotest.test_case "dot export" `Quick test_to_dot_ptg;
      ] );
    ( "ptg.random",
      [
        QCheck_alcotest.to_alcotest qcheck_random_task_count;
        QCheck_alcotest.to_alcotest qcheck_random_single_entry_exit;
        QCheck_alcotest.to_alcotest qcheck_random_parents;
        Alcotest.test_case "width parameter" `Quick test_width_parameter_effect;
        Alcotest.test_case "jump edges" `Quick test_jump_edges_skip_levels;
        Alcotest.test_case "parameter validation" `Quick
          test_random_validate_params;
        Alcotest.test_case "paper grid" `Quick test_paper_grid_size;
      ] );
    ( "ptg.strassen",
      [
        Alcotest.test_case "shape" `Quick test_strassen_shape;
        Alcotest.test_case "fixed width" `Quick test_strassen_fixed_width;
        Alcotest.test_case "mult vs add cost" `Quick
          test_strassen_mult_heavier_than_add;
        Alcotest.test_case "explicit data" `Quick test_strassen_explicit_data;
      ] );
    ( "ptg.fft",
      [
        Alcotest.test_case "task counts 15/39/95" `Quick test_fft_task_counts;
        Alcotest.test_case "structure" `Quick test_fft_structure;
        Alcotest.test_case "per-level costs" `Quick
          test_fft_per_level_costs_identical;
        Alcotest.test_case "bad points" `Quick test_fft_rejects_bad_points;
        QCheck_alcotest.to_alcotest qcheck_fft_acyclic_connected;
      ] );
  ]

(* ---------- Analysis ---------- *)

let test_analysis_fft () =
  let rng = Prng.create ~seed:21 in
  let ptg = Fft.generate ~points:8 rng in
  let a = Analysis.analyse ptg in
  Alcotest.(check int) "tasks" 39 a.Analysis.tasks;
  Alcotest.(check int) "width" 8 a.Analysis.max_width;
  Alcotest.(check bool) "parallelism between 1 and width" true
    (a.Analysis.avg_parallelism >= 1.
    && a.Analysis.avg_parallelism <= float_of_int a.Analysis.max_width);
  Alcotest.(check bool) "comm/comp positive" true (a.Analysis.comm_to_comp > 0.);
  (* Level widths sum to the task count. *)
  Alcotest.(check int) "level widths sum" 39
    (Array.fold_left ( + ) 0 a.Analysis.level_widths)

let test_analysis_consistency_random () =
  for seed = 0 to 9 do
    let rng = Prng.create ~seed in
    let ptg = Random_gen.generate rng Random_gen.default in
    let a = Analysis.analyse ptg in
    Alcotest.(check int) "tasks match" (Ptg.task_count ptg) a.Analysis.tasks;
    Alcotest.(check int) "width matches" (Ptg.max_width ptg)
      a.Analysis.max_width;
    Alcotest.(check (float 1.)) "work matches" (Ptg.work ptg)
      a.Analysis.total_work;
    Alcotest.(check bool) "cp <= work" true
      (a.Analysis.critical_path_flops <= a.Analysis.total_work +. 1.)
  done

let analysis_cases =
  ( "ptg.analysis",
    [
      Alcotest.test_case "fft report" `Quick test_analysis_fft;
      Alcotest.test_case "consistency" `Quick test_analysis_consistency_random;
    ] )

let suite = suite @ [ analysis_cases ]
