module Platform = Mcs_platform.Platform
module Grid5000 = Mcs_platform.Grid5000
module Task = Mcs_taskmodel.Task
module Builder = Mcs_ptg.Builder
module Prng = Mcs_prng.Prng
module Schedule = Mcs_sched.Schedule
module Pipeline = Mcs_sched.Pipeline
module Strategy = Mcs_sched.Strategy
open Mcs_sim

let check_float = Alcotest.(check (float 1e-6))

(* ---------- Flow network ---------- *)

let test_single_flow_full_capacity () =
  let net = Flow_network.create ~capacities:[| 100. |] in
  let f = Flow_network.add_flow net [ 0 ] in
  check_float "gets everything" 100. (Flow_network.rate net f)

let test_fair_share () =
  let net = Flow_network.create ~capacities:[| 100. |] in
  let f1 = Flow_network.add_flow net [ 0 ] in
  let f2 = Flow_network.add_flow net [ 0 ] in
  check_float "half" 50. (Flow_network.rate net f1);
  check_float "half" 50. (Flow_network.rate net f2);
  Flow_network.remove_flow net f1;
  check_float "back to full" 100. (Flow_network.rate net f2)

let test_max_min_classic () =
  (* Classic example: link0 cap 10 shared by f1 f2; link1 cap 100 used by
     f2 f3. f1 = 5, f2 = 5, f3 = 95. *)
  let net = Flow_network.create ~capacities:[| 10.; 100. |] in
  let f1 = Flow_network.add_flow net [ 0 ] in
  let f2 = Flow_network.add_flow net [ 0; 1 ] in
  let f3 = Flow_network.add_flow net [ 1 ] in
  let rates = Flow_network.rates net in
  let rate f = List.assq f rates in
  check_float "f1" 5. (rate f1);
  check_float "f2" 5. (rate f2);
  check_float "f3" 95. (rate f3)

let test_bottleneck_propagation () =
  (* Three flows over a narrow link and one over a wide one. *)
  let net = Flow_network.create ~capacities:[| 30.; 1000. |] in
  let fs = List.init 3 (fun _ -> Flow_network.add_flow net [ 0; 1 ]) in
  let big = Flow_network.add_flow net [ 1 ] in
  let rates = Flow_network.rates net in
  List.iter (fun f -> check_float "narrow share" 10. (List.assq f rates)) fs;
  check_float "big gets the rest" 970. (List.assq big rates)

let test_empty_route_unbounded () =
  let net = Flow_network.create ~capacities:[| 10. |] in
  let f = Flow_network.add_flow net [] in
  Alcotest.(check bool) "unbounded" true
    (Flow_network.rate net f >= Flow_network.max_rate)

let test_flow_network_validation () =
  let net = Flow_network.create ~capacities:[| 10. |] in
  Alcotest.(check bool) "bad link" true
    (try
       ignore (Flow_network.add_flow net [ 3 ]);
       false
     with Invalid_argument _ -> true);
  let f = Flow_network.add_flow net [ 0 ] in
  Flow_network.remove_flow net f;
  Alcotest.(check bool) "double remove" true
    (try
       Flow_network.remove_flow net f;
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "bad capacity" true
    (try
       ignore (Flow_network.create ~capacities:[| 0. |]);
       false
     with Invalid_argument _ -> true)

let test_per_flow_cap () =
  let net = Flow_network.create ~capacities:[| 100. |] in
  let capped = Flow_network.add_flow net ~cap:10. [ 0 ] in
  let free = Flow_network.add_flow net [ 0 ] in
  let rates = Flow_network.rates net in
  check_float "capped at 10" 10. (List.assq capped rates);
  check_float "the rest goes to the other" 90. (List.assq free rates)

let test_cap_only_flow () =
  let net = Flow_network.create ~capacities:[| 100. |] in
  let f = Flow_network.add_flow net ~cap:7. [] in
  check_float "cap binds with empty route" 7. (Flow_network.rate net f);
  Alcotest.(check bool) "non-positive cap rejected" true
    (try
       ignore (Flow_network.add_flow net ~cap:0. [ 0 ]);
       false
     with Invalid_argument _ -> true)

let test_caps_below_fair_share () =
  (* Three flows capped at 20 on a 100-capacity link: no contention. *)
  let net = Flow_network.create ~capacities:[| 100. |] in
  let fs = List.init 3 (fun _ -> Flow_network.add_flow net ~cap:20. [ 0 ]) in
  let rates = Flow_network.rates net in
  List.iter (fun f -> check_float "at cap" 20. (List.assq f rates)) fs

let qcheck_work_conservation =
  QCheck.Test.make
    ~name:"max-min: at least one link saturated when flows exist" ~count:50
    QCheck.(int_range 1 8)
    (fun nflows ->
      let net = Flow_network.create ~capacities:[| 50.; 80. |] in
      let rng = Prng.create ~seed:nflows in
      let routes =
        List.init nflows (fun _ ->
            match Prng.int rng 3 with
            | 0 -> [ 0 ]
            | 1 -> [ 1 ]
            | _ -> [ 0; 1 ])
      in
      let flows = List.map (fun route -> Flow_network.add_flow net route) routes in
      let rates = Flow_network.rates net in
      let load = [| 0.; 0. |] in
      List.iter2
        (fun f route ->
          let r = List.assq f rates in
          List.iter (fun l -> load.(l) <- load.(l) +. r) route)
        flows routes;
      load.(0) <= 50. +. 1e-6
      && load.(1) <= 80. +. 1e-6
      && (load.(0) >= 50. -. 1e-6 || load.(1) >= 80. -. 1e-6))

(* ---------- Topology ---------- *)

let test_topology_single_switch () =
  let topo = Topology.of_platform (Grid5000.lille ()) in
  Alcotest.(check int) "three uplinks, no backbone" 3
    (Array.length (Topology.capacities topo));
  Alcotest.(check (list int)) "intra" [ 0 ]
    (Topology.route topo ~src_cluster:0 ~dst_cluster:0);
  Alcotest.(check (list int)) "inter same switch" [ 0; 2 ]
    (Topology.route topo ~src_cluster:0 ~dst_cluster:2)

let test_topology_multi_switch () =
  let topo = Topology.of_platform (Grid5000.sophia ()) in
  Alcotest.(check int) "three uplinks + backbone" 4
    (Array.length (Topology.capacities topo));
  Alcotest.(check (list int)) "cross switch goes through backbone" [ 3; 0; 1 ]
    (Topology.route topo ~src_cluster:0 ~dst_cluster:1)

(* ---------- Replay ---------- *)

let seconds_task ?(alpha = 0.) seconds =
  Task.make ~data:(seconds *. 1e9) ~complexity:(Stencil 1.) ~alpha

let toy_platform ?(procs = 4) () =
  Platform.make ~name:"toy"
    [ { Platform.cluster_name = "c0"; procs; gflops = 1.; switch = 0 } ]

let test_replay_chain_no_comm () =
  let platform = toy_platform () in
  let tasks = [| seconds_task 3.; seconds_task 4. |] in
  let ptg = Builder.build ~id:0 ~name:"c" ~tasks ~edges:[ (0, 1, 0.) ] in
  let placements =
    [|
      { Schedule.node = 0; cluster = 0; procs = [| 0 |]; start = 0.; finish = 3. };
      { Schedule.node = 1; cluster = 0; procs = [| 0 |]; start = 3.; finish = 7. };
    |]
  in
  let sched = Schedule.make ~ptg ~placements in
  let result = Replay.run platform [ sched ] in
  check_float "no-comm chain matches plan" 7. result.Replay.makespans.(0);
  Alcotest.(check int) "no flows" 0 result.Replay.flows_created

let test_replay_transfer_timing () =
  (* Two tasks on different single processors joined by a 1 GB edge:
     one NIC stream, so the simulated start of the successor must be
     pred finish + latency + bytes/nic. *)
  let platform = toy_platform () in
  let tasks = [| seconds_task 2.; seconds_task 1. |] in
  let ptg = Builder.build ~id:0 ~name:"t" ~tasks ~edges:[ (0, 1, 1e9) ] in
  let transfer = 1e9 /. Platform.nic_bandwidth platform in
  let latency = Platform.latency platform in
  let placements =
    [|
      { Schedule.node = 0; cluster = 0; procs = [| 0 |]; start = 0.; finish = 2. };
      { Schedule.node = 1; cluster = 0; procs = [| 1 |];
        start = 2. +. latency +. transfer;
        finish = 3. +. latency +. transfer };
    |]
  in
  let result = Replay.run platform [ Schedule.make ~ptg ~placements ] in
  check_float "start after transfer"
    (2. +. latency +. transfer)
    result.Replay.start_times.(0).(1);
  Alcotest.(check int) "one flow" 1 result.Replay.flows_created

let test_replay_contention_slows_transfers () =
  (* Two producer/consumer pairs transferring concurrently across the
     inter-switch backbone share it and take twice the exclusive
     transfer time. *)
  let platform =
    Platform.make ~name:"toy" ~nic_bandwidth:1.25e9
      ~backbone_bandwidth:1.25e9
      [
        { Platform.cluster_name = "c0"; procs = 2; gflops = 1.; switch = 0 };
        { Platform.cluster_name = "c1"; procs = 2; gflops = 1.; switch = 1 };
      ]
  in
  let mk id offset =
    let tasks = [| seconds_task 1.; seconds_task 1. |] in
    let ptg = Builder.build ~id ~name:"p" ~tasks ~edges:[ (0, 1, 1.25e9) ] in
    let placements =
      [|
        { Schedule.node = 0; cluster = 0; procs = [| offset |]; start = 0.;
          finish = 1. };
        { Schedule.node = 1; cluster = 1; procs = [| offset + 2 |];
          start = 2.; finish = 3. };
      |]
    in
    Schedule.make ~ptg ~placements
  in
  let result = Replay.run platform [ mk 0 0; mk 1 1 ] in
  let latency = Platform.latency platform in
  (* Exclusive transfer of 1.25e9 over 1.25e9 B/s = 1 s; two sharing
     flows -> 2 s. Start = 1 (finish) + latency + 2. *)
  check_float "contended start" (3. +. latency)
    result.Replay.start_times.(0).(1);
  check_float "same for the other" (3. +. latency)
    result.Replay.start_times.(1).(1)

let test_replay_proc_fifo_order () =
  (* Two independent apps share one processor; the replay must keep the
     planned order. *)
  let platform = toy_platform ~procs:1 () in
  let mk id start =
    let tasks = [| seconds_task 2. |] in
    let ptg = Builder.build ~id ~name:"s" ~tasks ~edges:[] in
    let placements =
      [| { Schedule.node = 0; cluster = 0; procs = [| 0 |]; start;
           finish = start +. 2. } |]
    in
    Schedule.make ~ptg ~placements
  in
  let result = Replay.run platform [ mk 0 0.; mk 1 2. ] in
  check_float "first" 2. result.Replay.makespans.(0);
  check_float "second" 4. result.Replay.makespans.(1)

let test_replay_on_pipeline_output () =
  let platform = Grid5000.rennes () in
  let rng = Prng.create ~seed:123 in
  let ptgs =
    List.init 5 (fun id ->
        Mcs_ptg.Random_gen.generate ~id rng Mcs_ptg.Random_gen.default)
  in
  let schedules =
    Pipeline.schedule_concurrent ~strategy:Strategy.Equal_share platform ptgs
  in
  let result = Replay.run platform schedules in
  Alcotest.(check int) "five makespans" 5 (Array.length result.Replay.makespans);
  List.iteri
    (fun i sched ->
      let sim = result.Replay.makespans.(i) in
      Alcotest.(check bool)
        (Printf.sprintf "app %d simulated >= 0.8x estimate" i)
        true
        (sim >= 0.8 *. sched.Schedule.makespan);
      Alcotest.(check bool)
        (Printf.sprintf "app %d simulated within 2x estimate" i)
        true
        (sim <= 2. *. sched.Schedule.makespan))
    schedules;
  Alcotest.(check bool) "events counted" true (result.Replay.events_processed > 0)

let test_replay_deterministic () =
  let platform = Grid5000.sophia () in
  let rng = Prng.create ~seed:9 in
  let ptgs =
    List.init 4 (fun id ->
        Mcs_ptg.Random_gen.generate ~id rng Mcs_ptg.Random_gen.default)
  in
  let schedules =
    Pipeline.schedule_concurrent ~strategy:Strategy.Selfish platform ptgs
  in
  let r1 = Replay.run platform schedules in
  let r2 = Replay.run platform schedules in
  Alcotest.(check bool) "same makespans" true
    (r1.Replay.makespans = r2.Replay.makespans)

let test_replay_rejects_empty () =
  Alcotest.(check bool) "no schedules" true
    (try
       ignore (Replay.run (toy_platform ()) []);
       false
     with Invalid_argument _ -> true)

let qcheck_replay_close_to_estimate =
  QCheck.Test.make
    ~name:"simulated makespan within [0.5x, 3x] of the estimate" ~count:15
    QCheck.(pair (int_range 0 500) (int_range 0 3))
    (fun (seed, platform_idx) ->
      let platform = List.nth (Grid5000.all ()) platform_idx in
      let rng = Prng.create ~seed in
      let ptgs =
        List.init 3 (fun id ->
            Mcs_ptg.Random_gen.generate ~id rng Mcs_ptg.Random_gen.default)
      in
      let schedules =
        Pipeline.schedule_concurrent ~strategy:Strategy.Equal_share platform
          ptgs
      in
      let result = Replay.run platform schedules in
      List.for_all2
        (fun sched sim ->
          sim >= 0.5 *. sched.Schedule.makespan
          && sim <= 3. *. sched.Schedule.makespan)
        schedules
        (Array.to_list result.Replay.makespans))

let suite =
  [
    ( "sim.flow_network",
      [
        Alcotest.test_case "single flow" `Quick test_single_flow_full_capacity;
        Alcotest.test_case "fair share" `Quick test_fair_share;
        Alcotest.test_case "max-min classic" `Quick test_max_min_classic;
        Alcotest.test_case "bottleneck propagation" `Quick
          test_bottleneck_propagation;
        Alcotest.test_case "empty route" `Quick test_empty_route_unbounded;
        Alcotest.test_case "validation" `Quick test_flow_network_validation;
        Alcotest.test_case "per-flow cap" `Quick test_per_flow_cap;
        Alcotest.test_case "cap-only flow" `Quick test_cap_only_flow;
        Alcotest.test_case "caps below fair share" `Quick
          test_caps_below_fair_share;
        QCheck_alcotest.to_alcotest qcheck_work_conservation;
      ] );
    ( "sim.topology",
      [
        Alcotest.test_case "single switch" `Quick test_topology_single_switch;
        Alcotest.test_case "multi switch" `Quick test_topology_multi_switch;
      ] );
    ( "sim.replay",
      [
        Alcotest.test_case "chain without comm" `Quick test_replay_chain_no_comm;
        Alcotest.test_case "transfer timing" `Quick test_replay_transfer_timing;
        Alcotest.test_case "contention" `Quick
          test_replay_contention_slows_transfers;
        Alcotest.test_case "processor fifo" `Quick test_replay_proc_fifo_order;
        Alcotest.test_case "pipeline output" `Quick
          test_replay_on_pipeline_output;
        Alcotest.test_case "deterministic" `Quick test_replay_deterministic;
        Alcotest.test_case "rejects empty" `Quick test_replay_rejects_empty;
        QCheck_alcotest.to_alcotest qcheck_replay_close_to_estimate;
      ] );
  ]
