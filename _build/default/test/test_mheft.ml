module Platform = Mcs_platform.Platform
module Grid5000 = Mcs_platform.Grid5000
module Task = Mcs_taskmodel.Task
module Builder = Mcs_ptg.Builder
module Prng = Mcs_prng.Prng
open Mcs_sched

let check_float = Alcotest.(check (float 1e-6))

let seconds_task ?(alpha = 0.) seconds =
  Task.make ~data:(seconds *. 1e9) ~complexity:(Stencil 1.) ~alpha

let random_ptg ?(tasks = 25) seed =
  let rng = Prng.create ~seed in
  Mcs_ptg.Random_gen.generate rng
    { Mcs_ptg.Random_gen.default with tasks }

let toy_platform ?(procs = 8) ?(gflops = 1.) () =
  Platform.make ~name:"toy"
    [ { Platform.cluster_name = "c0"; procs; gflops; switch = 0 } ]

let test_valid_schedules () =
  let platform = Grid5000.sophia () in
  for seed = 0 to 4 do
    let ptg = random_ptg seed in
    let sched = Mheft.schedule platform ptg in
    match Schedule.validate ~platform [ sched ] with
    | Ok () -> ()
    | Error v -> Alcotest.fail v.Schedule.message
  done

let test_heft_one_proc_each () =
  let platform = Grid5000.lille () in
  let ptg = random_ptg 9 in
  let sched = Mheft.schedule_heft platform ptg in
  Array.iter
    (fun pl ->
      Alcotest.(check bool) "at most one processor" true
        (Array.length pl.Schedule.procs <= 1))
    sched.Schedule.placements;
  match Schedule.validate ~platform [ sched ] with
  | Ok () -> ()
  | Error v -> Alcotest.fail v.Schedule.message

let test_mheft_beats_heft_on_parallel_tasks () =
  (* A single highly parallel task: M-HEFT allocates many processors,
     HEFT cannot. *)
  let platform = toy_platform ~procs:16 () in
  let tasks = [| seconds_task ~alpha:0.05 64. |] in
  let ptg = Builder.build ~id:0 ~name:"one" ~tasks ~edges:[] in
  let mheft = (Mheft.schedule platform ptg).Schedule.makespan in
  let heft = (Mheft.schedule_heft platform ptg).Schedule.makespan in
  check_float "heft is sequential" 64. heft;
  Alcotest.(check bool) "mheft parallelises" true (mheft < 10.)

let test_efficiency_bound_restrains_allocation () =
  let platform = toy_platform ~procs:16 () in
  (* alpha = 0.2: efficiency at p procs is 1/(0.2p + 0.8). 0.5 efficiency
     requires p <= 6. *)
  let tasks = [| seconds_task ~alpha:0.2 64. |] in
  let ptg = Builder.build ~id:0 ~name:"one" ~tasks ~edges:[] in
  let sched =
    Mheft.schedule
      ~options:{ Mheft.default_options with min_efficiency = 0.5 }
      platform ptg
  in
  Alcotest.(check bool) "allocation bounded by efficiency" true
    (Array.length (Schedule.placement sched 0).Schedule.procs <= 6);
  let pure = Mheft.schedule platform ptg in
  Alcotest.(check bool) "pure mheft uses more" true
    (Array.length (Schedule.placement pure 0).Schedule.procs
    > Array.length (Schedule.placement sched 0).Schedule.procs)

let test_max_fraction () =
  let platform = toy_platform ~procs:16 () in
  let tasks = [| seconds_task ~alpha:0. 64. |] in
  let ptg = Builder.build ~id:0 ~name:"one" ~tasks ~edges:[] in
  let sched =
    Mheft.schedule
      ~options:{ Mheft.default_options with max_fraction = 0.25 }
      platform ptg
  in
  Alcotest.(check int) "quarter of the cluster" 4
    (Array.length (Schedule.placement sched 0).Schedule.procs)

let test_options_validation () =
  let platform = toy_platform () in
  let ptg = random_ptg 1 in
  let raises options =
    try
      ignore (Mheft.schedule ~options platform ptg);
      false
    with Invalid_argument _ -> true
  in
  Alcotest.(check bool) "fraction 0" true
    (raises { Mheft.default_options with max_fraction = 0. });
  Alcotest.(check bool) "fraction > 1" true
    (raises { Mheft.default_options with max_fraction = 1.5 });
  Alcotest.(check bool) "efficiency > 1" true
    (raises { Mheft.default_options with min_efficiency = 2. });
  Alcotest.(check bool) "max_procs 0" true
    (raises { Mheft.default_options with max_procs = Some 0 })

let test_respects_dependencies () =
  let platform = Grid5000.nancy () in
  let ptg = random_ptg ~tasks:40 33 in
  let sched = Mheft.schedule platform ptg in
  let dag = ptg.Mcs_ptg.Ptg.dag in
  for v = 0 to Mcs_dag.Dag.node_count dag - 1 do
    Array.iter
      (fun (u, _) ->
        Alcotest.(check bool) "pred finishes first" true
          (sched.Schedule.placements.(u).Schedule.finish
          <= sched.Schedule.placements.(v).Schedule.start +. 1e-9))
      (Mcs_dag.Dag.preds dag v)
  done

let qcheck_mheft_no_worse_than_heft =
  QCheck.Test.make
    ~name:"M-HEFT never loses to HEFT by more than rounding" ~count:15
    QCheck.(int_range 0 500)
    (fun seed ->
      let platform = Grid5000.lille () in
      let ptg = random_ptg seed in
      let m = (Mheft.schedule platform ptg).Schedule.makespan in
      let h = (Mheft.schedule_heft platform ptg).Schedule.makespan in
      (* HEFT's space is included in M-HEFT's greedy search; greedy order
         effects can cost a little, but not much. *)
      m <= 1.2 *. h)

let suite =
  [
    ( "sched.mheft",
      [
        Alcotest.test_case "valid schedules" `Quick test_valid_schedules;
        Alcotest.test_case "heft uses one proc" `Quick test_heft_one_proc_each;
        Alcotest.test_case "mheft beats heft" `Quick
          test_mheft_beats_heft_on_parallel_tasks;
        Alcotest.test_case "efficiency bound" `Quick
          test_efficiency_bound_restrains_allocation;
        Alcotest.test_case "max fraction" `Quick test_max_fraction;
        Alcotest.test_case "options validation" `Quick test_options_validation;
        Alcotest.test_case "dependencies" `Quick test_respects_dependencies;
        QCheck_alcotest.to_alcotest qcheck_mheft_no_worse_than_heft;
      ] );
  ]
