(* Cross-cutting invariants tying several modules together. *)

module Grid5000 = Mcs_platform.Grid5000
module P = Mcs_platform.Platform
module Task = Mcs_taskmodel.Task
module Ptg = Mcs_ptg.Ptg
module Prng = Mcs_prng.Prng
open Mcs_sched

let random_ptg ?(tasks = 20) seed =
  let rng = Prng.create ~seed in
  Mcs_ptg.Random_gen.generate rng
    { Mcs_ptg.Random_gen.default with tasks }

(* An absolute lower bound on any makespan of [ptg]: along the critical
   path every task needs at least its non-parallelizable fraction on the
   fastest processor. *)
let makespan_lower_bound platform ptg =
  let speed = P.max_speed platform in
  let bl =
    Mcs_dag.Dag.bottom_levels ptg.Ptg.dag
      ~node_weight:(fun v ->
        let task = ptg.Ptg.tasks.(v) in
        if Task.is_zero task then 0.
        else task.Task.alpha *. Task.seq_time task ~gflops:speed)
      ~edge_weight:(fun _ -> 0.)
  in
  bl.(Ptg.entry ptg)

let qcheck_makespan_above_lower_bound =
  QCheck.Test.make
    ~name:"schedule makespans respect the Amdahl critical-path lower bound"
    ~count:25
    QCheck.(pair (int_range 0 1000) (int_range 0 3))
    (fun (seed, platform_idx) ->
      let platform = List.nth (Grid5000.all ()) platform_idx in
      let ptgs = List.init 3 (fun i -> random_ptg ((seed * 3) + i)) in
      let schedules =
        Pipeline.schedule_concurrent ~strategy:Strategy.Equal_share platform
          ptgs
      in
      List.for_all2
        (fun ptg sched ->
          sched.Schedule.makespan
          >= makespan_lower_bound platform ptg -. 1e-6)
        ptgs schedules)

let qcheck_allocation_beta_monotone =
  QCheck.Test.make
    ~name:"a looser beta never lengthens the allocated critical path"
    ~count:40
    QCheck.(pair (int_range 0 2000) (int_range 0 3))
    (fun (seed, platform_idx) ->
      let platform = List.nth (Grid5000.all ()) platform_idx in
      let r = Reference_cluster.of_platform platform in
      let ptg = random_ptg seed in
      let cp beta =
        (Allocation.allocate r platform ~beta ptg).Allocation.critical_path
      in
      let tight = cp 0.2 and loose = cp 0.8 in
      loose <= tight +. 1e-9)

let qcheck_selfish_dominates_constrained_alone =
  QCheck.Test.make
    ~name:"alone, a selfish allocation is at least as fast as a constrained one"
    ~count:25
    QCheck.(int_range 0 1000)
    (fun seed ->
      let platform = Grid5000.nancy () in
      let r = Reference_cluster.of_platform platform in
      let ptg = random_ptg seed in
      let makespan beta =
        let a = Allocation.allocate r platform ~beta ptg in
        let scheds = List_mapper.run platform r [ (ptg, a.Allocation.procs) ] in
        (List.hd scheds).Schedule.makespan
      in
      (* Communication effects can make bigger allocations slightly
         slower; allow a modest margin. *)
      makespan 1.0 <= makespan 0.15 *. 1.15 +. 1e-6)

let qcheck_strategy_ps_ratios =
  QCheck.Test.make
    ~name:"PS betas are proportional to the gamma characteristic" ~count:40
    QCheck.(pair (int_range 0 500) (oneofl [ Strategy.Cp; Strategy.Width; Strategy.Work ]))
    (fun (seed, metric) ->
      let ptgs = List.init 4 (fun i -> random_ptg ((seed * 4) + i)) in
      let betas = Strategy.betas (Strategy.Proportional metric) ~ref_speed:3. ptgs in
      let gammas =
        Array.of_list (List.map (Strategy.gamma metric ~ref_speed:3.) ptgs)
      in
      let ok = ref true in
      for i = 0 to 3 do
        for j = 0 to 3 do
          if gammas.(j) > 0. && betas.(j) > 0. then begin
            let lhs = betas.(i) /. betas.(j) and rhs = gammas.(i) /. gammas.(j) in
            if Float.abs (lhs -. rhs) > 1e-6 *. Float.max 1. rhs then ok := false
          end
        done
      done;
      !ok)

let qcheck_replay_matches_estimate_without_comm =
  QCheck.Test.make
    ~name:"replay reproduces the mapper exactly when edges carry no data"
    ~count:20
    QCheck.(int_range 0 500)
    (fun seed ->
      (* Chains with zero-byte edges: the simulation has no flows, so the
         timing must match the plan to the epsilon. *)
      let platform = Grid5000.lille () in
      let r = Reference_cluster.of_platform platform in
      let rng = Prng.create ~seed in
      let mk id =
        let n = 2 + Prng.int rng 5 in
        let tasks =
          Array.init n (fun _ ->
              Task.make
                ~data:(Prng.uniform rng ~lo:1e8 ~hi:2e9)
                ~complexity:(Stencil 1.)
                ~alpha:(Prng.uniform rng ~lo:0. ~hi:0.25))
        in
        let edges = List.init (n - 1) (fun i -> (i, i + 1, 0.)) in
        Mcs_ptg.Builder.build ~id ~name:"chain" ~tasks ~edges
      in
      let ptgs = List.init 3 mk in
      let apps =
        List.map
          (fun ptg ->
            let a = Allocation.allocate r platform ~beta:0.33 ptg in
            (ptg, a.Allocation.procs))
          ptgs
      in
      let schedules = List_mapper.run platform r apps in
      let sim = Mcs_sim.Replay.run platform schedules in
      sim.Mcs_sim.Replay.flows_created = 0
      && List.for_all2
           (fun sched m ->
             Float.abs (sched.Schedule.makespan -. m) < 1e-6)
           schedules
           (Array.to_list sim.Mcs_sim.Replay.makespans))

let qcheck_backfill_schedules_valid =
  QCheck.Test.make ~name:"backfill mapping produces valid schedules"
    ~count:15
    QCheck.(pair (int_range 0 500) (int_range 0 3))
    (fun (seed, platform_idx) ->
      let platform = List.nth (Grid5000.all ()) platform_idx in
      let ptgs = List.init 3 (fun i -> random_ptg ((seed * 3) + i)) in
      let config =
        {
          Pipeline.default_config with
          mapper =
            { List_mapper.ordering = List_mapper.Global_backfill;
              packing = false };
        }
      in
      let schedules =
        Pipeline.schedule_concurrent ~config ~strategy:Strategy.Equal_share
          platform ptgs
      in
      match Schedule.validate ~platform schedules with
      | Ok () -> true
      | Error _ -> false)

let suite =
  [
    ( "properties",
      [
        QCheck_alcotest.to_alcotest qcheck_makespan_above_lower_bound;
        QCheck_alcotest.to_alcotest qcheck_allocation_beta_monotone;
        QCheck_alcotest.to_alcotest qcheck_selfish_dominates_constrained_alone;
        QCheck_alcotest.to_alcotest qcheck_strategy_ps_ratios;
        QCheck_alcotest.to_alcotest qcheck_replay_matches_estimate_without_comm;
        QCheck_alcotest.to_alcotest qcheck_backfill_schedules_valid;
      ] );
  ]
