test/test_sim.ml: Alcotest Array Flow_network List Mcs_platform Mcs_prng Mcs_ptg Mcs_sched Mcs_sim Mcs_taskmodel Printf QCheck QCheck_alcotest Replay Topology
