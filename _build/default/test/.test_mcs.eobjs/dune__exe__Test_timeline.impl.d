test/test_timeline.ml: Alcotest Array Fun List Mcs_prng Mcs_util QCheck QCheck_alcotest Timeline
