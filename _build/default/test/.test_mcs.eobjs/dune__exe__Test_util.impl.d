test/test_util.ml: Alcotest Array Floatx Heap List Mcs_util QCheck QCheck_alcotest String Table
