test/test_platform.ml: Alcotest Grid5000 List Mcs_platform Platform QCheck QCheck_alcotest String
