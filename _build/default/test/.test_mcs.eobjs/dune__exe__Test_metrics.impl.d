test/test_metrics.ml: Alcotest Array Mcs_metrics Metrics QCheck QCheck_alcotest
