test/test_release.ml: Alcotest Array Float List Mcs_experiments Mcs_platform Mcs_prng Mcs_ptg Mcs_sched Mcs_sim Mcs_taskmodel Pipeline Printf Schedule Strategy
