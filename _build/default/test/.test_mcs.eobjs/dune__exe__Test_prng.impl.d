test/test_prng.ml: Alcotest Array Fun List Mcs_prng Prng QCheck QCheck_alcotest
