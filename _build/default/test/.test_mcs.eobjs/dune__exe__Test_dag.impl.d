test/test_dag.ml: Alcotest Array Dag Float List Mcs_dag Mcs_prng Option QCheck QCheck_alcotest String
