test/test_parmap.ml: Alcotest Fun List Mcs_util Parmap QCheck QCheck_alcotest
