test/test_mheft.ml: Alcotest Array Mcs_dag Mcs_platform Mcs_prng Mcs_ptg Mcs_sched Mcs_taskmodel Mheft QCheck QCheck_alcotest Schedule
