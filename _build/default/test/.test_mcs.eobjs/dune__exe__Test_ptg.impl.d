test/test_ptg.ml: Alcotest Analysis Array Builder Fft Fun Hashtbl List Mcs_dag Mcs_prng Mcs_ptg Mcs_taskmodel Option Printf Ptg QCheck QCheck_alcotest Random_gen Strassen String
