test/test_trace.ml: Alcotest List Mcs_dag Mcs_platform Mcs_prng Mcs_ptg Mcs_sched Mcs_taskmodel Pipeline Schedule Strategy String Trace
