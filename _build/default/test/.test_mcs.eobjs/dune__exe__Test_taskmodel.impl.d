test/test_taskmodel.ml: Alcotest Mcs_platform Mcs_prng Mcs_taskmodel QCheck QCheck_alcotest Redistribution Task
