test/test_integration.ml: Alcotest Array List Mcs_experiments Mcs_platform Mcs_prng Mcs_sched Mcs_sim
