open Mcs_taskmodel
module Prng = Mcs_prng.Prng

let check_float = Alcotest.(check (float 1e-9))

let stencil ?(data = 1e6) ?(alpha = 0.1) a =
  Task.make ~data ~complexity:(Stencil a) ~alpha

let test_flops_stencil () =
  check_float "a.d" 2e8 (Task.flops (stencil ~data:1e6 200.))

let test_flops_sort () =
  let t = Task.make ~data:1024. ~complexity:(Sort 2.) ~alpha:0. in
  check_float "a.d.log2 d" (2. *. 1024. *. 10.) (Task.flops t)

let test_flops_matmul () =
  let t = Task.make ~data:1e6 ~complexity:Matmul ~alpha:0. in
  check_float "d^1.5" 1e9 (Task.flops t)

let test_bytes () =
  check_float "8d" 8e6 (Task.bytes (stencil ~data:1e6 100.))

let test_seq_time () =
  let t = stencil ~data:1e6 100. in
  (* 1e8 flops on 2 GFlop/s = 0.05 s *)
  check_float "seq time" 0.05 (Task.seq_time t ~gflops:2.);
  (* Twice the speed halves the time. *)
  check_float "speed scaling"
    (Task.seq_time t ~gflops:1. /. 2.)
    (Task.seq_time t ~gflops:2.)

let test_amdahl () =
  let t = stencil ~alpha:0.25 100. in
  let seq = Task.seq_time t ~gflops:1. in
  check_float "p=1 is seq" seq (Task.time t ~gflops:1. ~procs:1);
  (* Amdahl limit: time(p) -> alpha * seq as p grows. *)
  let t1000 = Task.time t ~gflops:1. ~procs:1000 in
  Alcotest.(check bool) "bounded by alpha fraction" true
    (t1000 > 0.25 *. seq && t1000 < 0.26 *. seq);
  check_float "exact amdahl p=4"
    (seq *. (0.25 +. (0.75 /. 4.)))
    (Task.time t ~gflops:1. ~procs:4)

let test_speedup () =
  let t = stencil ~alpha:0. 100. in
  check_float "linear speedup when alpha=0" 8. (Task.speedup t ~procs:8);
  let t' = stencil ~alpha:1. 100. in
  check_float "no speedup when alpha=1" 1. (Task.speedup t' ~procs:8)

let test_zero_task () =
  Alcotest.(check bool) "is_zero" true (Task.is_zero Task.zero);
  check_float "no flops" 0. (Task.flops Task.zero);
  check_float "no bytes" 0. (Task.bytes Task.zero);
  check_float "no time" 0. (Task.time Task.zero ~gflops:1. ~procs:4)

let test_validation () =
  let raises f =
    try
      ignore (f ());
      false
    with Invalid_argument _ -> true
  in
  Alcotest.(check bool) "negative data" true
    (raises (fun () -> Task.make ~data:(-1.) ~complexity:Matmul ~alpha:0.));
  Alcotest.(check bool) "alpha > 1" true
    (raises (fun () -> Task.make ~data:1. ~complexity:Matmul ~alpha:1.5));
  Alcotest.(check bool) "non-positive factor" true
    (raises (fun () -> Task.make ~data:1. ~complexity:(Stencil 0.) ~alpha:0.));
  Alcotest.(check bool) "procs < 1" true
    (raises (fun () -> Task.time (stencil 100.) ~gflops:1. ~procs:0))

let test_random_ranges () =
  let rng = Prng.create ~seed:3 in
  for _ = 1 to 500 do
    let t = Task.random rng ~class_:Task.Class_mixed in
    Alcotest.(check bool) "d in range" true
      (t.Task.data >= Task.d_min && t.Task.data <= Task.d_max);
    Alcotest.(check bool) "alpha in range" true
      (t.Task.alpha >= 0. && t.Task.alpha <= Task.alpha_max);
    match t.Task.complexity with
    | Stencil a | Sort a ->
      Alcotest.(check bool) "a in range" true (a >= Task.a_min && a <= Task.a_max)
    | Matmul -> ()
  done

let test_random_class_specific () =
  let rng = Prng.create ~seed:4 in
  for _ = 1 to 50 do
    (match (Task.random rng ~class_:Task.Class_stencil).Task.complexity with
    | Stencil _ -> ()
    | Sort _ | Matmul -> Alcotest.fail "wrong class for stencil");
    (match (Task.random rng ~class_:Task.Class_sort).Task.complexity with
    | Sort _ -> ()
    | Stencil _ | Matmul -> Alcotest.fail "wrong class for sort");
    match (Task.random rng ~class_:Task.Class_matmul).Task.complexity with
    | Matmul -> ()
    | Stencil _ | Sort _ -> Alcotest.fail "wrong class for matmul"
  done

let test_mixed_covers_classes () =
  let rng = Prng.create ~seed:5 in
  let st = ref 0 and so = ref 0 and mm = ref 0 in
  for _ = 1 to 300 do
    match (Task.random rng ~class_:Task.Class_mixed).Task.complexity with
    | Stencil _ -> incr st
    | Sort _ -> incr so
    | Matmul -> incr mm
  done;
  Alcotest.(check bool) "all classes drawn" true
    (!st > 50 && !so > 50 && !mm > 50)

let qcheck_amdahl_monotone =
  QCheck.Test.make ~name:"Amdahl time decreases with processors" ~count:300
    QCheck.(triple (float_range 0. 1.) (float_range 1e5 1e8) (int_range 1 100))
    (fun (alpha, data, procs) ->
      let t = Task.make ~data ~complexity:Matmul ~alpha in
      Task.time t ~gflops:3. ~procs:(procs + 1)
      <= Task.time t ~gflops:3. ~procs +. 1e-12)

let qcheck_speedup_bounded =
  QCheck.Test.make ~name:"speedup is between 1 and p" ~count:300
    QCheck.(pair (float_range 0. 1.) (int_range 1 64))
    (fun (alpha, procs) ->
      let t = Task.make ~data:1e6 ~complexity:Matmul ~alpha in
      let s = Task.speedup t ~procs in
      s >= 1. -. 1e-12 && s <= float_of_int procs +. 1e-9)

let test_redistribution_route_bandwidth () =
  let sophia = Mcs_platform.Grid5000.sophia () in
  let fabric k = Mcs_platform.Platform.fabric_bandwidth sophia k in
  check_float "intra cluster is the fabric" (fabric 0)
    (Redistribution.route_bandwidth sophia ~src_cluster:0 ~dst_cluster:0);
  (* Azur: 74 procs, half-bisection of GigE NICs. *)
  check_float "fabric scales with the cluster" (74. /. 2. *. 1.25e8) (fabric 0);
  (* Sophia clusters are on distinct switches: the 10G backbone binds. *)
  check_float "cross switch"
    (Mcs_platform.Platform.backbone_bandwidth sophia)
    (Redistribution.route_bandwidth sophia ~src_cluster:0 ~dst_cluster:1)

let test_redistribution_rate_streams () =
  let lille = Mcs_platform.Grid5000.lille () in
  let nic = Mcs_platform.Platform.nic_bandwidth lille in
  (* Few streams: NIC-bound; many streams: fabric-bound. *)
  check_float "2 streams" (2. *. nic)
    (Redistribution.rate lille ~src_cluster:0 ~dst_cluster:1 ~src_procs:2
       ~dst_procs:8);
  check_float "fabric cap"
    (Mcs_platform.Platform.link_bandwidth lille)
    (Redistribution.rate lille ~src_cluster:0 ~dst_cluster:1 ~src_procs:50
       ~dst_procs:50);
  Alcotest.(check bool) "bad procs" true
    (try
       ignore
         (Redistribution.rate lille ~src_cluster:0 ~dst_cluster:1 ~src_procs:0
            ~dst_procs:1);
       false
     with Invalid_argument _ -> true)

let test_redistribution_estimate () =
  let lille = Mcs_platform.Grid5000.lille () in
  let bytes = 1e9 in
  check_float "zero bytes" 0.
    (Redistribution.estimate lille ~src_cluster:0 ~src_procs:[| 0; 1 |]
       ~dst_cluster:1 ~dst_procs:[| 53 |] ~bytes:0.);
  check_float "same procs in place" 0.
    (Redistribution.estimate lille ~src_cluster:0 ~src_procs:[| 1; 0 |]
       ~dst_cluster:0 ~dst_procs:[| 0; 1 |] ~bytes);
  let t =
    Redistribution.estimate lille ~src_cluster:0 ~src_procs:[| 0 |]
      ~dst_cluster:1 ~dst_procs:[| 53 |] ~bytes
  in
  (* Single stream: bounded by one NIC. *)
  check_float "latency + transfer"
    (Mcs_platform.Platform.latency lille
    +. (bytes /. Mcs_platform.Platform.nic_bandwidth lille))
    t

let test_same_procs () =
  Alcotest.(check bool) "order-insensitive" true
    (Redistribution.same_procs [| 3; 1; 2 |] [| 1; 2; 3 |]);
  Alcotest.(check bool) "different size" false
    (Redistribution.same_procs [| 1 |] [| 1; 2 |]);
  Alcotest.(check bool) "different members" false
    (Redistribution.same_procs [| 1; 4 |] [| 1; 2 |]);
  Alcotest.(check bool) "empty" true (Redistribution.same_procs [||] [||])

let suite =
  [
    ( "taskmodel.task",
      [
        Alcotest.test_case "flops stencil" `Quick test_flops_stencil;
        Alcotest.test_case "flops sort" `Quick test_flops_sort;
        Alcotest.test_case "flops matmul" `Quick test_flops_matmul;
        Alcotest.test_case "bytes" `Quick test_bytes;
        Alcotest.test_case "sequential time" `Quick test_seq_time;
        Alcotest.test_case "amdahl" `Quick test_amdahl;
        Alcotest.test_case "speedup" `Quick test_speedup;
        Alcotest.test_case "zero task" `Quick test_zero_task;
        Alcotest.test_case "validation" `Quick test_validation;
        Alcotest.test_case "random ranges" `Quick test_random_ranges;
        Alcotest.test_case "random class" `Quick test_random_class_specific;
        Alcotest.test_case "mixed coverage" `Quick test_mixed_covers_classes;
        QCheck_alcotest.to_alcotest qcheck_amdahl_monotone;
        QCheck_alcotest.to_alcotest qcheck_speedup_bounded;
      ] );
    ( "taskmodel.redistribution",
      [
        Alcotest.test_case "route bandwidth" `Quick
          test_redistribution_route_bandwidth;
        Alcotest.test_case "stream rates" `Quick test_redistribution_rate_streams;
        Alcotest.test_case "estimate" `Quick test_redistribution_estimate;
        Alcotest.test_case "same_procs" `Quick test_same_procs;
      ] );
  ]
