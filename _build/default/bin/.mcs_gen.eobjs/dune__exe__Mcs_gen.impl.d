bin/mcs_gen.ml: Arg Cmd Cmdliner Format Mcs_prng Mcs_ptg Mcs_taskmodel Term
