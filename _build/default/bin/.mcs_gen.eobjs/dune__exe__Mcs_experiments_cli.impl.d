bin/mcs_experiments_cli.ml: Arg Cmd Cmdliner List Mcs_experiments Mcs_util String Term
