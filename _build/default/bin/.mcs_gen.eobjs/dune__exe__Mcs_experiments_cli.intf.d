bin/mcs_experiments_cli.mli:
