bin/mcs_gen.mli:
