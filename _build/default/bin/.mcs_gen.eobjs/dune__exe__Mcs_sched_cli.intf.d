bin/mcs_sched_cli.mli:
