bin/mcs_sched_cli.ml: Arg Array Cmd Cmdliner List Mcs_experiments Mcs_platform Mcs_prng Mcs_ptg Mcs_sched Mcs_sim Printf Term
