(* PTG generator CLI: draw a random/FFT/Strassen parallel task graph and
   print it as Graphviz DOT (or a one-line summary with --summary). *)

open Cmdliner

let generate kind tasks width regularity density jump points seed summary =
  let rng = Mcs_prng.Prng.create ~seed in
  let ptg =
    match kind with
    | "random" ->
      Mcs_ptg.Random_gen.generate rng
        {
          Mcs_ptg.Random_gen.tasks;
          width;
          regularity;
          density;
          jump;
          class_ = Mcs_taskmodel.Task.Class_mixed;
        }
    | "fft" -> Mcs_ptg.Fft.generate ~points rng
    | "strassen" -> Mcs_ptg.Strassen.generate rng
    | other ->
      prerr_endline ("unknown kind: " ^ other ^ " (random|fft|strassen)");
      exit 2
  in
  if summary then begin
    Format.printf "%a@." Mcs_ptg.Ptg.pp ptg;
    Format.printf "%a@." Mcs_ptg.Analysis.pp (Mcs_ptg.Analysis.analyse ptg)
  end
  else print_string (Mcs_ptg.Ptg.to_dot ptg)

let kind =
  Arg.(value & pos 0 string "random"
       & info [] ~docv:"KIND" ~doc:"random, fft or strassen")

let tasks =
  Arg.(value & opt int 20 & info [ "n"; "tasks" ] ~doc:"number of tasks (random)")

let width =
  Arg.(value & opt float 0.5 & info [ "width" ] ~doc:"width parameter (random)")

let regularity =
  Arg.(value & opt float 0.5 & info [ "regularity" ] ~doc:"regularity (random)")

let density =
  Arg.(value & opt float 0.5 & info [ "density" ] ~doc:"density (random)")

let jump =
  Arg.(value & opt int 1 & info [ "jump" ] ~doc:"jump levels (random)")

let points =
  Arg.(value & opt int 8 & info [ "points" ] ~doc:"FFT points (power of two)")

let seed = Arg.(value & opt int 0 & info [ "seed" ] ~doc:"PRNG seed")

let summary =
  Arg.(value & flag & info [ "summary" ] ~doc:"print a one-line summary")

let cmd =
  let doc = "generate a parallel task graph" in
  Cmd.v
    (Cmd.info "mcs_gen" ~doc)
    Term.(
      const generate $ kind $ tasks $ width $ regularity $ density $ jump
      $ points $ seed $ summary)

let () = exit (Cmd.eval cmd)
